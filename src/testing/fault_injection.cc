#include "testing/fault_injection.h"

#include <stdexcept>
#include <utility>

#include "corpus/ingest.h"
#include "obs/alloc_tracker.h"
#include "pipeline/merge.h"

namespace sparqlog::testing {

namespace {

std::optional<Violation> Violate(std::string invariant, std::string detail) {
  Violation v;
  v.invariant = std::move(invariant);
  v.detail = std::move(detail);
  return v;
}

}  // namespace

std::string FaultPlan::Describe() const {
  std::string s = "plan{seed=" + std::to_string(seed);
  if (truncate_after_chunks != 0) {
    s += " truncate@" + std::to_string(truncate_after_chunks);
  }
  if (transient_at_chunk != 0) {
    s += " transient@" + std::to_string(transient_at_chunk) + "x" +
         std::to_string(transient_burst);
  }
  if (persistent_at_chunk != 0) {
    s += " persistent@" + std::to_string(persistent_at_chunk);
  }
  if (alloc_fail_after >= 0) {
    s += " alloc_fail_after=" + std::to_string(alloc_fail_after);
  }
  if (poison_modulus != 0) {
    s += " poison=" + std::to_string(poison_residue) + "/" +
         std::to_string(poison_modulus);
  }
  if (!any()) s += " fault-free";
  return s + "}";
}

FaultPlan RandomFaultPlan(util::Rng& rng) {
  FaultPlan plan;
  plan.seed = rng.Next();
  // ~1 in 6 plans are the fault-free control: the containment layer must
  // be invisible when nothing goes wrong.
  if (rng.Chance(1.0 / 6.0)) return plan;
  if (rng.Chance(0.25)) {
    plan.truncate_after_chunks = 1 + rng.Below(8);
  }
  if (rng.Chance(0.35)) {
    plan.transient_at_chunk = 1 + rng.Below(6);
    // Bursts straddle the retry bound (3): short bursts must recover
    // losslessly, long ones must degrade to a persistent failure.
    plan.transient_burst = static_cast<int>(1 + rng.Below(6));
  }
  if (rng.Chance(0.2)) {
    plan.persistent_at_chunk = 1 + rng.Below(6);
  }
  if (rng.Chance(0.3)) {
    plan.alloc_fail_after = static_cast<int64_t>(rng.Below(4000));
  }
  if (rng.Chance(0.4)) {
    plan.poison_modulus = 2 + rng.Below(30);
    plan.poison_residue = rng.Below(plan.poison_modulus);
  }
  return plan;
}

bool FaultInjectingChunkSource::NextChunk(size_t max_lines,
                                          pipeline::LineChunk& out) {
  if (plan_.truncate_after_chunks != 0 &&
      ordinal_ >= plan_.truncate_after_chunks) {
    injected_truncation_ = true;
    return false;
  }
  const uint64_t next_ordinal = ordinal_ + 1;
  if (plan_.transient_at_chunk == next_ordinal && transient_left_ > 0) {
    --transient_left_;
    ++injected_transients_;
    // The ordinal does NOT advance: a retry targets the same read, like
    // a real EINTR.
    throw pipeline::TransientChunkError(
        "injected transient fault at chunk " + std::to_string(next_ordinal));
  }
  if (plan_.persistent_at_chunk == next_ordinal && !injected_persistent_) {
    injected_persistent_ = true;
    ++ordinal_;  // the failed read consumed the ordinal
    throw pipeline::ChunkSourceError(
        "injected persistent fault at chunk " + std::to_string(next_ordinal));
  }
  if (!inner_.NextChunk(max_lines, out)) return false;
  ++ordinal_;
  return true;
}

pipeline::PipelineOptions FaultPipelineOptions(const EquivalenceConfig& config,
                                               const FaultPlan& plan) {
  pipeline::PipelineOptions options;
  options.threads = config.threads;
  options.chunk_size = config.chunk_size;
  options.queue_capacity = config.queue_capacity;
  options.shards = config.shards;
  options.use_valid_corpus = config.use_valid_corpus;
  options.fault_containment = true;
  // Fuzz the sample cap too (it's a PipelineOptions knob): derived from
  // the plan seed, so the determinism replay below sees the same value.
  options.quarantine_max_samples = 1 + plan.seed % 24;
  if (plan.poison_modulus != 0) {
    options.parse_fault_hook = [modulus = plan.poison_modulus,
                                residue = plan.poison_residue](
                                   std::string_view line) {
      if (corpus::HashBytes(line) % modulus == residue) {
        throw std::runtime_error("injected poison line");
      }
    };
  }
  return options;
}

std::optional<Violation> CheckFaultContainment(
    const std::vector<std::string>& log, const FaultPlan& plan,
    const EquivalenceConfig& config) {
  auto describe = [&] {
    return plan.Describe() + " threads=" + std::to_string(config.threads) +
           " shards=" + std::to_string(config.shards) +
           " chunk=" + std::to_string(config.chunk_size);
  };

  pipeline::ParallelLogPipeline pipeline(FaultPipelineOptions(config, plan));
  pipeline::VectorChunkSource inner(log);
  FaultInjectingChunkSource source(inner, plan);

  pipeline::PipelineResult result;
  if (plan.alloc_fail_after >= 0) obs::ArmAllocFailure(plan.alloc_fail_after);
  try {
    result = pipeline.Run(source);
    obs::DisarmAllocFailure();
  } catch (const std::exception& e) {
    obs::DisarmAllocFailure();
    return Violate("fault-escape", std::string("exception escaped Run: ") +
                                       e.what() + " (" + describe() + ")");
  } catch (...) {
    obs::DisarmAllocFailure();
    return Violate("fault-escape",
                   "non-std exception escaped Run (" + describe() + ")");
  }

  // ---- Accounting conservation.
  const corpus::CorpusStats& stats = result.stats;
  if (!stats.Conserved()) {
    return Violate(
        "fault-conservation",
        "total=" + std::to_string(stats.total) +
            " != valid=" + std::to_string(stats.valid) +
            " + malformed=" + std::to_string(stats.malformed) +
            " + abandoned=" + std::to_string(stats.abandoned) +
            " + quarantined=" + std::to_string(stats.quarantined) + " (" +
            describe() + ")");
  }

  // ---- Quarantine report agrees with the counters.
  if (result.quarantine.count != stats.quarantined) {
    return Violate("fault-quarantine-count",
                   "report count " + std::to_string(result.quarantine.count) +
                       " != stats.quarantined " +
                       std::to_string(stats.quarantined) + " (" + describe() +
                       ")");
  }
  if (result.quarantine.samples.size() > 1 + plan.seed % 24 ||
      result.quarantine.samples.size() > result.quarantine.count) {
    return Violate("fault-quarantine-samples",
                   "sample list over bound (" + describe() + ")");
  }
  for (size_t i = 1; i < result.quarantine.samples.size(); ++i) {
    const auto& a = result.quarantine.samples[i - 1];
    const auto& b = result.quarantine.samples[i];
    if (a.chunk > b.chunk ||
        (a.chunk == b.chunk && a.line_index >= b.line_index)) {
      return Violate("fault-quarantine-order",
                     "samples not in (chunk, line) order (" + describe() +
                         ")");
    }
  }

  // ---- Source status reflects what actually happened.
  const bool expect_source_failure =
      source.injected_persistent() ||
      source.injected_transients() > 3;  // over the reader's retry bound
  if (expect_source_failure && result.source_status.ok()) {
    return Violate("fault-source-status",
                   "persistent source fault not surfaced (" + describe() +
                       ")");
  }
  if (!expect_source_failure && !result.source_status.ok()) {
    return Violate("fault-source-status",
                   "spurious source failure: " +
                       result.source_status.ToString() + " (" + describe() +
                       ")");
  }

  // ---- Line accounting: never invent lines; without source loss every
  // line is consumed.
  if (result.lines > log.size()) {
    return Violate("fault-lines",
                   "consumed " + std::to_string(result.lines) + " of " +
                       std::to_string(log.size()) + " lines (" + describe() +
                       ")");
  }
  const bool lossless_source =
      !source.injected_truncation() && !expect_source_failure;
  if (lossless_source && result.lines != log.size()) {
    return Violate("fault-lines",
                   "lossless plan consumed " + std::to_string(result.lines) +
                       " of " + std::to_string(log.size()) + " lines (" +
                       describe() + ")");
  }

  // ---- Deterministic plans replay bit-identically, shard count and
  // thread count notwithstanding.
  if (plan.deterministic()) {
    EquivalenceConfig alt = config;
    alt.threads = config.threads == 1 ? 2 : 1;
    alt.shards = config.shards == 3 ? 5 : 3;
    pipeline::ParallelLogPipeline replay_pipeline(
        FaultPipelineOptions(alt, plan));
    pipeline::VectorChunkSource replay_inner(log);
    FaultInjectingChunkSource replay_source(replay_inner, plan);
    pipeline::PipelineResult replay;
    try {
      replay = replay_pipeline.Run(replay_source);
    } catch (const std::exception& e) {
      return Violate("fault-escape",
                     std::string("exception escaped replay Run: ") + e.what() +
                         " (" + describe() + ")");
    }
    // Different chunk boundaries are possible only via options, and the
    // replay keeps chunk_size — so the injected source faults hit the
    // same ordinals and the surviving line set is identical.
    if (replay.stats.total != stats.total ||
        replay.stats.valid != stats.valid ||
        replay.stats.unique != stats.unique ||
        replay.stats.malformed != stats.malformed ||
        replay.stats.abandoned != stats.abandoned ||
        replay.stats.quarantined != stats.quarantined) {
      return Violate("fault-determinism",
                     "replay counters diverge (" + describe() + ")");
    }
    if (pipeline::StatisticsDigest(replay.analysis) !=
        pipeline::StatisticsDigest(result.analysis)) {
      return Violate("fault-determinism",
                     "replay StatisticsDigest diverges (" + describe() + ")");
    }
    if (replay.quarantine.count != result.quarantine.count) {
      return Violate("fault-determinism",
                     "replay quarantine count diverges (" + describe() + ")");
    }
  }

  // ---- The fault-free control equals a plain run exactly.
  if (!plan.any()) {
    pipeline::PipelineOptions plain_options =
        FaultPipelineOptions(config, FaultPlan{});
    pipeline::ParallelLogPipeline plain(plain_options);
    pipeline::PipelineResult plain_result = plain.Run(log);
    if (plain_result.stats.total != stats.total ||
        plain_result.stats.valid != stats.valid ||
        plain_result.stats.unique != stats.unique ||
        pipeline::StatisticsDigest(plain_result.analysis) !=
            pipeline::StatisticsDigest(result.analysis)) {
      return Violate("fault-control",
                     "fault-free plan diverges from a plain run (" +
                         describe() + ")");
    }
    if (stats.quarantined != 0 || stats.abandoned != 0) {
      return Violate("fault-control",
                     "fault-free plan produced quarantined/abandoned "
                     "entries (" +
                         describe() + ")");
    }
  }

  return std::nullopt;
}

}  // namespace sparqlog::testing
