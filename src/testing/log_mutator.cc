#include "testing/log_mutator.h"

#include <cstddef>

namespace sparqlog::testing {

namespace {

constexpr char kHexUpper[] = "0123456789ABCDEF";
constexpr char kHexLower[] = "0123456789abcdef";

void AppendPercent(std::string& out, unsigned char byte, bool lower) {
  const char* hex = lower ? kHexLower : kHexUpper;
  out.push_back('%');
  out.push_back(hex[byte >> 4]);
  out.push_back(hex[byte & 0xF]);
}

/// Bytes that must be %-encoded for the decode to be faithful: '%' and
/// '+' (decoder metacharacters) and '&' (value terminator).
bool MustEncode(char c) { return c == '%' || c == '+' || c == '&'; }

constexpr std::string_view kNoiseParams[] = {
    "&format=json",
    "&timeout=30000",
    "&default-graph-uri=http%3A%2F%2Fdbpedia.org",
    "&output=text%2Fhtml",
    "&run=+Run+Query+",
    "&debug=on&soft-limit=",
};

constexpr std::string_view kBadBytes[] = {
    "\xff",          // lone invalid byte
    "\xc0\x80",      // overlong encoding
    "\xc3\x28",      // invalid continuation
    "\x80",          // stray continuation byte
    "\xf0\x9f",      // truncated 4-byte sequence
};

}  // namespace

LogLineMutator::LogLineMutator(const LogMutatorOptions& options)
    : options_(options), rng_(options.seed) {}

std::string LogLineMutator::EncodeLine(std::string_view query_text) {
  std::string out = "query=";
  out.reserve(query_text.size() + 16);
  for (char c : query_text) {
    unsigned char byte = static_cast<unsigned char>(c);
    if (c == ' ' && rng_.Chance(0.5)) {
      out.push_back('+');
    } else if (MustEncode(c) || byte < 0x21 || byte >= 0x7f ||
               rng_.Chance(0.15)) {
      // Mandatory escapes, non-printables, and a gratuitous sprinkle
      // over safe bytes — real CGI clients escape inconsistently.
      AppendPercent(out, byte, rng_.Chance(0.5));
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string LogLineMutator::Mutate(std::string_view line) {
  std::string out(line);
  size_t pos = out.empty() ? 0 : rng_.Below(out.size() + 1);
  switch (rng_.Below(11)) {
    case 0:  // truncation
      out.resize(pos);
      break;
    case 1: {  // broken %-escape: bare '%', "%Z", or trailing "%4"
      switch (rng_.Below(3)) {
        case 0: out.insert(pos, "%"); break;
        case 1: out.insert(pos, "%Z5"); break;
        default: out.insert(pos, "%4"); break;
      }
      break;
    }
    case 2:  // gratuitous '+' (decodes to a space mid-token)
      out.insert(pos, "+");
      break;
    case 3:  // raw '&' split: everything after becomes CGI noise
      out.insert(pos, "&x=1");
      break;
    case 4:  // trailing CGI parameter noise
      out.append(kNoiseParams[rng_.Below(std::size(kNoiseParams))]);
      break;
    case 5: {  // invalid UTF-8 injection
      std::string_view bad = kBadBytes[rng_.Below(std::size(kBadBytes))];
      out.insert(pos, bad.data(), bad.size());
      break;
    }
    case 6:  // byte flip
      if (!out.empty()) {
        size_t i = rng_.Below(out.size());
        out[i] = static_cast<char>(rng_.Below(256));
      }
      break;
    case 7: {  // delete a span
      if (!out.empty()) {
        size_t i = rng_.Below(out.size());
        size_t len = 1 + rng_.Below(8);
        out.erase(i, len);
      }
      break;
    }
    case 8: {  // duplicate a span
      if (!out.empty()) {
        size_t i = rng_.Below(out.size());
        size_t len = 1 + rng_.Below(8);
        std::string span = out.substr(i, len);
        out.insert(i, span);
      }
      break;
    }
    case 9:  // damage the query= prefix: the line becomes noise
      if (rng_.Chance(0.5)) {
        out.erase(0, out.size() < 3 ? out.size() : 3);
      } else {
        out.insert(0, "q=");
      }
      break;
    default:  // leading/embedded whitespace or %09
      out.insert(pos, rng_.Chance(0.5) ? " " : "%09");
      break;
  }
  return out;
}

std::string LogLineMutator::NextLine(std::string_view query_text) {
  std::string line = EncodeLine(query_text);
  while (rng_.Chance(options_.mutation_probability)) {
    line = Mutate(line);
  }
  return line;
}

}  // namespace sparqlog::testing
