#ifndef SPARQLOG_TESTING_FAULT_INJECTION_H_
#define SPARQLOG_TESTING_FAULT_INJECTION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pipeline/chunk_source.h"
#include "pipeline/pipeline.h"
#include "testing/invariants.h"
#include "util/rng.h"

namespace sparqlog::testing {

/// One deterministic fault scenario. Every field is a pure function of
/// the generating seed, so a plan printed by a failing run replays
/// exactly. A plan composes independent fault classes:
///
///  * source truncation — the source silently ends after N chunks
///    (a truncated mmap / short file);
///  * transient read errors — a burst of TransientChunkError at one
///    chunk ordinal (EINTR, short read); the pipeline retries up to its
///    bound, so bursts within the bound lose nothing and longer bursts
///    degrade to a persistent failure;
///  * persistent read error — ChunkSourceError at one chunk ordinal
///    (mid-file I/O error); the run keeps everything read so far and
///    surfaces PipelineResult::source_status;
///  * allocation failure — the N-th worker-scope allocation throws
///    bad_alloc (requires the binary to install obs/alloc_hooks.h);
///  * poison lines — the parse_fault_hook throws for every line whose
///    content hash matches, modeling a line that deterministically
///    crashes the parser; such lines must come out quarantined.
struct FaultPlan {
  uint64_t seed = 0;
  /// Source ends after this many chunks (0 = never).
  uint64_t truncate_after_chunks = 0;
  /// 1-based chunk ordinal of the transient burst (0 = none).
  uint64_t transient_at_chunk = 0;
  /// Consecutive TransientChunkError throws in the burst.
  int transient_burst = 0;
  /// 1-based chunk ordinal of the persistent error (0 = none).
  uint64_t persistent_at_chunk = 0;
  /// Arm the one-shot allocation failure this many in-scope allocations
  /// in (-1 = none).
  int64_t alloc_fail_after = -1;
  /// Poison every line with HashBytes(line) % poison_modulus ==
  /// poison_residue (0 = no poisoning).
  uint64_t poison_modulus = 0;
  uint64_t poison_residue = 0;

  bool any() const {
    return truncate_after_chunks != 0 || transient_at_chunk != 0 ||
           persistent_at_chunk != 0 || alloc_fail_after >= 0 ||
           poison_modulus != 0;
  }
  /// True iff every injected fault is a deterministic function of the
  /// input lines and chunk ordinals — alloc faults are not (the
  /// countdown lands wherever the worker's allocation counter happens
  /// to be), everything else is. Deterministic plans must produce
  /// bit-identical results on replay.
  bool deterministic() const { return alloc_fail_after < 0; }
  /// Compact one-line rendering for failure reports.
  std::string Describe() const;
};

/// Samples a plan: each fault class fires independently, biased so most
/// plans carry one or two faults and some carry none (the fault-free
/// control) or several (compound failures).
FaultPlan RandomFaultPlan(util::Rng& rng);

/// Wraps a source and injects the plan's source-level faults. Exhaustion
/// bookkeeping mirrors BoundedChunkSource: exceptions surface through
/// NextChunk exactly as a faulty real source's would. Resume calls
/// forward to the inner source (the journal-under-fault tests use this).
class FaultInjectingChunkSource : public pipeline::ChunkSource {
 public:
  FaultInjectingChunkSource(pipeline::ChunkSource& inner,
                            const FaultPlan& plan)
      : inner_(inner), plan_(plan), transient_left_(plan.transient_burst) {}

  bool NextChunk(size_t max_lines, pipeline::LineChunk& out) override;

  bool SupportsResume() const override { return inner_.SupportsResume(); }
  uint64_t offset() const override { return inner_.offset(); }
  bool SeekTo(uint64_t offset) override { return inner_.SeekTo(offset); }

  /// What the plan actually did this run (a fault scheduled past the end
  /// of the input never fires); the containment checker keys its
  /// expectations off these, not off the plan.
  bool injected_truncation() const { return injected_truncation_; }
  int injected_transients() const { return injected_transients_; }
  bool injected_persistent() const { return injected_persistent_; }

 private:
  pipeline::ChunkSource& inner_;
  FaultPlan plan_;
  uint64_t ordinal_ = 0;  ///< chunks delivered (or attempted) so far
  int transient_left_ = 0;
  bool injected_truncation_ = false;
  int injected_transients_ = 0;
  bool injected_persistent_ = false;
};

/// Builds the pipeline options for a fault run: `config`'s shape,
/// containment on, and the plan's poison hook installed. The caller is
/// responsible for arming/disarming the plan's allocation fault around
/// Run (see CheckFaultContainment).
pipeline::PipelineOptions FaultPipelineOptions(const EquivalenceConfig& config,
                                               const FaultPlan& plan);

/// Runs `log` through a fault-containment pipeline under `plan` and
/// checks the containment contract:
///  * no exception escapes Run;
///  * conservation — total == valid + malformed + abandoned + quarantined;
///  * the quarantine report agrees with the quarantined counter, its
///    samples are deterministically ordered and capped;
///  * a persistent source fault (or an over-bound transient burst)
///    surfaces as a non-OK source_status, and only then;
///  * lines are never invented (result.lines bounded by the input), and
///    without source faults every line is accounted for;
///  * deterministic plans replay bit-identically: a second run under a
///    different shard count yields the same counters, quarantine count,
///    and StatisticsDigest.
/// Requires the binary to have installed obs/alloc_hooks.h for plans
/// with alloc_fail_after >= 0 (without the hooks the alloc fault simply
/// never fires, which the contract tolerates).
std::optional<Violation> CheckFaultContainment(
    const std::vector<std::string>& log, const FaultPlan& plan,
    const EquivalenceConfig& config);

}  // namespace sparqlog::testing

#endif  // SPARQLOG_TESTING_FAULT_INJECTION_H_
