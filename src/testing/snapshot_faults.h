#ifndef SPARQLOG_TESTING_SNAPSHOT_FAULTS_H_
#define SPARQLOG_TESTING_SNAPSHOT_FAULTS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "testing/invariants.h"
#include "util/rng.h"

namespace sparqlog::testing {

/// One deterministic storage-fault scenario for the snapshot-backed run
/// journal. Like FaultPlan, every field is a pure function of the
/// generating seed, so a plan printed by a failing run replays exactly.
/// A plan damages exactly one thing:
///
///  * bit flip — one byte of the target file is XORed after the
///    checkpoints were written (latent media corruption);
///  * truncate — the target file loses its tail (crash mid-copy,
///    filesystem rollback);
///  * torn publish — the NEXT checkpoint write of the target reaches
///    disk as prefix + zeros with no fsync (power cut during publish);
///  * fsync failure — the next checkpoint's fsync reports EIO; the
///    checkpoint write must fail loudly, and the previous checkpoint
///    must stay usable;
///  * rename failure — same, for the rename step of the publish.
///
/// Or nothing (kNone): the fault-free control must resume exactly, both
/// streamed and mmap-loaded.
struct StorageFaultPlan {
  enum class Kind {
    kNone,
    kBitFlip,
    kTruncate,
    kTornPublish,
    kFsyncFailure,
    kRenameFailure,
  };
  enum class Target {
    kCurrentGeneration,
    kPreviousGeneration,  ///< only meaningful for kBitFlip/kTruncate
    kManifest,
  };

  uint64_t seed = 0;
  Kind kind = Kind::kNone;
  Target target = Target::kCurrentGeneration;
  /// Fractional position of the damage inside the target file, in
  /// [0, 1): byte offset for flips, kept-prefix length for truncations
  /// and torn writes.
  double where = 0.5;

  /// Compact one-line rendering for failure reports.
  std::string Describe() const;
};

/// Samples a plan; ~1 in 6 is the fault-free control.
StorageFaultPlan RandomStorageFaultPlan(util::Rng& rng);

/// Runs `log` through a journaled pipeline, applies `plan`'s damage,
/// and checks the durability contract:
///  * damage to any retained snapshot byte is DETECTED — never a
///    silently wrong resume;
///  * a damaged current generation degrades to the previous one and the
///    finished run is still digest-identical to an uninterrupted run;
///  * a damaged previous generation is invisible (the current one
///    carries the run);
///  * a damaged manifest is a hard, reasoned error — and starting over
///    from scratch reproduces the reference digest;
///  * fsync/rename failures during a checkpoint surface as errors while
///    leaving the prior checkpoint resumable;
///  * the fault-free control resumes bit-identically, streamed and
///    mmap-backed.
/// Uses a temp-directory journal derived from the plan seed; cleans up
/// after itself.
std::optional<Violation> CheckSnapshotDurability(
    const std::vector<std::string>& log, const StorageFaultPlan& plan,
    const EquivalenceConfig& config);

}  // namespace sparqlog::testing

#endif  // SPARQLOG_TESTING_SNAPSHOT_FAULTS_H_
