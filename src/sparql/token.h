#ifndef SPARQLOG_SPARQL_TOKEN_H_
#define SPARQLOG_SPARQL_TOKEN_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace sparqlog::sparql {

/// Lexical token categories of the SPARQL 1.1 grammar.
enum class TokenType {
  kEof,
  kIriRef,      ///< <http://...>  (value: the IRI without brackets)
  kPName,       ///< prefix:local or prefix:  (value: the whole name)
  kBlankLabel,  ///< _:b1         (value: the label without "_:")
  kVar,         ///< ?x or $x     (value: the name without the sigil)
  kString,      ///< any quoted string (value: the unescaped content)
  kLangTag,     ///< @en          (value: "en")
  kInteger,     ///< 42
  kDecimal,     ///< 4.2
  kDouble,      ///< 4e2, 4.2e-1
  kIdent,       ///< keyword / builtin / 'a' / true / false
  // Punctuation and operators.
  kLBrace, kRBrace, kLParen, kRParen, kLBracket, kRBracket,
  kDot, kSemicolon, kComma,
  kEq, kNe, kLt, kGt, kLe, kGe,
  kAndAnd, kOrOr, kBang,
  kPlus, kMinus, kStar, kSlash,
  kPipe, kCaret, kCaretCaret, kQuestion,
};

/// A single lexed token with source position (for error messages).
///
/// `value` is a zero-copy slice: it points either into the lexer input
/// or, for the few tokens whose value differs from their spelling
/// (escaped strings, prefixed names with backslash escapes), into the
/// owning `TokenStream`'s side buffer. Either way the view dies with
/// the input line / token stream — consumers that outlive them (the
/// AST) must materialize via `str()`.
struct Token {
  TokenType type = TokenType::kEof;
  std::string_view value;
  size_t pos = 0;   ///< byte offset in the input
  size_t line = 1;  ///< 1-based line number
  size_t col = 1;   ///< 1-based column (byte offset within the line)

  bool Is(TokenType t) const { return type == t; }

  /// Materializes the value (the single owned copy an AST term keeps).
  std::string str() const { return std::string(value); }
};

/// Human-readable token-type name (used in parser diagnostics).
const char* TokenTypeName(TokenType t);

}  // namespace sparqlog::sparql

#endif  // SPARQLOG_SPARQL_TOKEN_H_
