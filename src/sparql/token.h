#ifndef SPARQLOG_SPARQL_TOKEN_H_
#define SPARQLOG_SPARQL_TOKEN_H_

#include <cstddef>
#include <string>

namespace sparqlog::sparql {

/// Lexical token categories of the SPARQL 1.1 grammar.
enum class TokenType {
  kEof,
  kIriRef,      ///< <http://...>  (value: the IRI without brackets)
  kPName,       ///< prefix:local or prefix:  (value: the whole name)
  kBlankLabel,  ///< _:b1         (value: the label without "_:")
  kVar,         ///< ?x or $x     (value: the name without the sigil)
  kString,      ///< any quoted string (value: the unescaped content)
  kLangTag,     ///< @en          (value: "en")
  kInteger,     ///< 42
  kDecimal,     ///< 4.2
  kDouble,      ///< 4e2, 4.2e-1
  kIdent,       ///< keyword / builtin / 'a' / true / false
  // Punctuation and operators.
  kLBrace, kRBrace, kLParen, kRParen, kLBracket, kRBracket,
  kDot, kSemicolon, kComma,
  kEq, kNe, kLt, kGt, kLe, kGe,
  kAndAnd, kOrOr, kBang,
  kPlus, kMinus, kStar, kSlash,
  kPipe, kCaret, kCaretCaret, kQuestion,
};

/// A single lexed token with source position (for error messages).
struct Token {
  TokenType type = TokenType::kEof;
  std::string value;
  size_t pos = 0;   ///< byte offset in the input
  size_t line = 1;  ///< 1-based line number

  bool Is(TokenType t) const { return type == t; }
};

/// Human-readable token-type name (used in parser diagnostics).
const char* TokenTypeName(TokenType t);

}  // namespace sparqlog::sparql

#endif  // SPARQLOG_SPARQL_TOKEN_H_
