#include "sparql/parser.h"

#include <charconv>
#include <memory>

#include "sparql/lexer.h"
#include "util/strings.h"

namespace sparqlog::sparql {

using util::EqualsIgnoreCase;
using util::Result;
using util::Status;

namespace {

constexpr char kRdfType[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
constexpr char kRdfFirst[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#first";
constexpr char kRdfRest[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#rest";
constexpr char kRdfNil[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#nil";
constexpr char kXsdInteger[] = "http://www.w3.org/2001/XMLSchema#integer";
constexpr char kXsdDecimal[] = "http://www.w3.org/2001/XMLSchema#decimal";
constexpr char kXsdDouble[] = "http://www.w3.org/2001/XMLSchema#double";
constexpr char kXsdBoolean[] = "http://www.w3.org/2001/XMLSchema#boolean";

/// The stateful single-pass parser over a token stream. Token values
/// are views into the input text / token stream, both of which outlive
/// the parse; the parser materializes them exactly once, at
/// AST-construction sites, onto `mr_` — the caller's arena on the
/// scratch path, the default heap resource otherwise. Every node is
/// constructed with `mr_` from birth, so moves between nodes stay
/// pointer steals and nothing silently re-copies.
class Impl {
 public:
  Impl(const TokenStream& tokens, const ParserOptions& options,
       std::pmr::memory_resource* mr, util::StringInterner* pname_cache)
      : tokens_(tokens.tokens()),
        options_(options),
        mr_(mr),
        pname_cache_(pname_cache),
        local_prefixes_(mr) {}

  Result<Query> ParseQueryUnit() {
    Query q(mr_);
    if (auto s = ParsePrologue(q); !s.ok()) return s;
    const Token& t = Cur();
    if (!t.Is(TokenType::kIdent)) {
      return Err("expected a query form keyword");
    }
    Status s = Status::OK();
    if (IsKeyword("SELECT")) {
      s = ParseSelectQuery(q);
    } else if (IsKeyword("ASK")) {
      s = ParseAskQuery(q);
    } else if (IsKeyword("CONSTRUCT")) {
      s = ParseConstructQuery(q);
    } else if (IsKeyword("DESCRIBE")) {
      s = ParseDescribeQuery(q);
    } else if (IsKeyword("INSERT") || IsKeyword("DELETE") ||
               IsKeyword("LOAD") || IsKeyword("CLEAR") ||
               IsKeyword("DROP") || IsKeyword("CREATE") ||
               IsKeyword("ADD") || IsKeyword("MOVE") || IsKeyword("COPY") ||
               IsKeyword("WITH")) {
      return Status::Unsupported("SPARQL Update request, not a query");
    } else {
      std::string msg("unknown query form '");
      msg.append(t.value);
      msg.push_back('\'');
      return Err(std::move(msg));
    }
    if (!s.ok()) return s;
    // Trailing VALUES clause.
    if (IsKeyword("VALUES")) {
      Result<Pattern> values = ParseInlineData();
      if (!values.ok()) return values.status();
      q.trailing_values = std::move(values).value();
    }
    if (!Cur().Is(TokenType::kEof)) {
      return Err("unexpected trailing input");
    }
    return q;
  }

 private:
  // --- Token plumbing -----------------------------------------------------

  const Token& Cur() const { return tokens_[idx_]; }
  const Token& Ahead(size_t n) const {
    size_t i = idx_ + n;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Bump() {
    if (idx_ + 1 < tokens_.size()) ++idx_;
  }
  bool Is(TokenType t) const { return Cur().Is(t); }
  bool Accept(TokenType t) {
    if (Is(t)) {
      Bump();
      return true;
    }
    return false;
  }
  Status Expect(TokenType t, const char* context) {
    if (!Is(t)) {
      return Err(std::string("expected ") + TokenTypeName(t) + " in " +
                 context + ", found " + TokenTypeName(Cur().type));
    }
    Bump();
    return Status::OK();
  }
  bool IsKeyword(const char* kw) const {
    return Is(TokenType::kIdent) && EqualsIgnoreCase(Cur().value, kw);
  }
  bool AcceptKeyword(const char* kw) {
    if (IsKeyword(kw)) {
      Bump();
      return true;
    }
    return false;
  }
  Status Err(std::string msg) const {
    return Status::InvalidArgument("parse error at line " +
                                   std::to_string(Cur().line) + ": " +
                                   std::move(msg));
  }

  /// Depth accounting for the mutually recursive productions. Each
  /// recursion entry point (group graph patterns, path groups,
  /// parenthesized expressions) holds one of these for its frame;
  /// `ok()` is false once the combined nesting exceeds the configured
  /// cap, turning pathological inputs into a parse error before the
  /// C++ stack is at risk.
  class DepthGuard {
   public:
    explicit DepthGuard(Impl* impl) : impl_(impl) { ++impl_->depth_; }
    ~DepthGuard() { --impl_->depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    bool ok() const {
      return impl_->depth_ <= impl_->options_.max_recursion_depth;
    }

   private:
    Impl* impl_;
  };

  Status DepthErr() const {
    return Err("query nesting exceeds the maximum depth of " +
               std::to_string(options_.max_recursion_depth));
  }

  /// Keywords that terminate a GROUP BY / HAVING / ORDER BY condition
  /// list; they must not be mistaken for function calls.
  bool AtModifierKeyword() const {
    return IsKeyword("GROUP") || IsKeyword("HAVING") || IsKeyword("ORDER") ||
           IsKeyword("LIMIT") || IsKeyword("OFFSET") || IsKeyword("VALUES") ||
           IsKeyword("ASC") || IsKeyword("DESC");
  }

  /// "genN" stays within SSO for any realistic counter, so the returned
  /// string never heap-allocates.
  std::string FreshBlank() { return "gen" + std::to_string(blank_counter_++); }

  /// Integer-token value -> uint64_t (the lexer guarantees digits only,
  /// matching the old strtoull semantics including overflow clamping).
  static uint64_t ParseUnsigned(std::string_view digits) {
    uint64_t v = 0;
    auto [ptr, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), v);
    if (ec == std::errc::result_out_of_range) v = UINT64_MAX;
    (void)ptr;
    return v;
  }

  // --- Prologue -----------------------------------------------------------

  Status ParsePrologue(Query& q) {
    for (;;) {
      if (AcceptKeyword("BASE")) {
        if (!Is(TokenType::kIriRef)) return Err("expected IRI after BASE");
        q.base = Cur().value;
        Bump();
      } else if (AcceptKeyword("PREFIX")) {
        if (!Is(TokenType::kPName)) {
          return Err("expected prefix name after PREFIX");
        }
        std::string_view pname = Cur().value;
        Bump();
        if (pname.empty() || pname.back() != ':') {
          return Err("bad prefix declaration '" + std::string(pname) + "'");
        }
        pname.remove_suffix(1);
        if (!Is(TokenType::kIriRef)) {
          return Err("expected IRI in PREFIX declaration");
        }
        // Token values outlive the parse, so the lookup table can hold
        // views; a later re-declaration wins (reverse lookup order).
        local_prefixes_.emplace_back(pname, Cur().value);
        q.prefixes.emplace_back(pname, Cur().value);
        Bump();
      } else {
        return Status::OK();
      }
    }
  }

  Result<AstString> ExpandPName(std::string_view pname) const {
    // Cross-line cache: sound only when this query declares no local
    // prefixes (then the expansion depends solely on the parser
    // options, which are fixed per scratch).
    const bool cacheable = pname_cache_ != nullptr && local_prefixes_.empty();
    if (cacheable) {
      if (const std::string_view* hit = pname_cache_->Find(pname)) {
        return AstString(*hit, mr_);
      }
    }
    size_t colon = pname.find(':');
    std::string_view prefix = pname.substr(0, colon);
    std::string_view local = pname.substr(colon + 1);
    std::string_view base;
    bool found = false;
    for (auto it = local_prefixes_.rbegin(); it != local_prefixes_.rend();
         ++it) {
      if (it->first == prefix) {
        base = it->second;
        found = true;
        break;
      }
    }
    if (!found) {
      if (auto dit = options_.default_prefixes.find(prefix);
          dit != options_.default_prefixes.end()) {
        base = dit->second;
        found = true;
      }
    }
    AstString full(mr_);
    if (found) {
      full.reserve(base.size() + local.size());
      full.append(base).append(local);
    } else if (options_.allow_unknown_prefixes) {
      full.reserve(11 + pname.size());
      full.append("urn:prefix:").append(pname);
    } else {
      std::string msg("undeclared prefix '");
      msg.append(prefix).append(":'");
      return Status::InvalidArgument(std::move(msg));
    }
    if (cacheable) pname_cache_->Insert(pname, full);
    return full;
  }

  // --- Query forms ----------------------------------------------------------

  Status ParseSelectQuery(Query& q) {
    q.form = QueryForm::kSelect;
    if (auto s = ParseSelectClause(q); !s.ok()) return s;
    if (auto s = ParseDatasetClauses(q); !s.ok()) return s;
    if (auto s = ParseWhereClause(q); !s.ok()) return s;
    return ParseSolutionModifier(q);
  }

  Status ParseSelectClause(Query& q) {
    Bump();  // SELECT
    if (AcceptKeyword("DISTINCT")) {
      q.distinct = true;
    } else if (AcceptKeyword("REDUCED")) {
      q.reduced = true;
    }
    if (Accept(TokenType::kStar)) {
      q.select_star = true;
      return Status::OK();
    }
    bool any = false;
    for (;;) {
      if (Is(TokenType::kVar)) {
        SelectItem item(mr_);
        item.var = Term::Var(Cur().value, mr_);
        Bump();
        q.select_items.push_back(std::move(item));
        any = true;
      } else if (Is(TokenType::kLParen)) {
        Bump();
        Result<Expr> e = ParseExpression();
        if (!e.ok()) return e.status();
        if (!AcceptKeyword("AS")) return Err("expected AS in SELECT (... )");
        if (!Is(TokenType::kVar)) return Err("expected variable after AS");
        SelectItem item(mr_);
        item.var = Term::Var(Cur().value, mr_);
        item.expr = std::move(e).value();
        Bump();
        if (auto s = Expect(TokenType::kRParen, "SELECT item"); !s.ok()) {
          return s;
        }
        q.select_items.push_back(std::move(item));
        any = true;
      } else {
        break;
      }
    }
    if (!any) return Err("empty SELECT clause");
    return Status::OK();
  }

  Status ParseAskQuery(Query& q) {
    q.form = QueryForm::kAsk;
    Bump();  // ASK
    if (auto s = ParseDatasetClauses(q); !s.ok()) return s;
    if (auto s = ParseWhereClause(q); !s.ok()) return s;
    return ParseSolutionModifier(q);
  }

  Status ParseConstructQuery(Query& q) {
    q.form = QueryForm::kConstruct;
    Bump();  // CONSTRUCT
    if (Is(TokenType::kLBrace)) {
      // Full form: CONSTRUCT { template } DatasetClause* WHERE GGP.
      Bump();
      if (auto s = ParseTriplesTemplate(q.construct_template); !s.ok()) {
        return s;
      }
      if (auto s = Expect(TokenType::kRBrace, "CONSTRUCT template"); !s.ok()) {
        return s;
      }
      if (auto s = ParseDatasetClauses(q); !s.ok()) return s;
      if (auto s = ParseWhereClause(q); !s.ok()) return s;
      return ParseSolutionModifier(q);
    }
    // Short form: CONSTRUCT DatasetClause* WHERE { triples }.
    if (auto s = ParseDatasetClauses(q); !s.ok()) return s;
    if (!AcceptKeyword("WHERE")) {
      return Err("expected template or WHERE after CONSTRUCT");
    }
    if (auto s = Expect(TokenType::kLBrace, "CONSTRUCT WHERE"); !s.ok()) {
      return s;
    }
    if (auto s = ParseTriplesTemplate(q.construct_template); !s.ok()) return s;
    if (auto s = Expect(TokenType::kRBrace, "CONSTRUCT WHERE"); !s.ok()) {
      return s;
    }
    // The template doubles as the pattern. Copy-assign into
    // mr_-constructed triples: the copies stay on the parse resource.
    AstVector<Pattern> children(mr_);
    children.reserve(q.construct_template.size());
    for (const TriplePattern& tp : q.construct_template) {
      TriplePattern copy(mr_);
      copy = tp;
      children.push_back(Pattern::Triple(std::move(copy)));
    }
    q.has_body = true;
    q.where = Pattern::Group(std::move(children));
    return ParseSolutionModifier(q);
  }

  Status ParseDescribeQuery(Query& q) {
    q.form = QueryForm::kDescribe;
    Bump();  // DESCRIBE
    if (Accept(TokenType::kStar)) {
      q.describe_all = true;
    } else {
      bool any = false;
      for (;;) {
        if (Is(TokenType::kVar)) {
          q.describe_targets.push_back(Term::Var(Cur().value, mr_));
          Bump();
          any = true;
        } else if (Is(TokenType::kIriRef) || Is(TokenType::kPName)) {
          Result<Term> t = ParseIri();
          if (!t.ok()) return t.status();
          q.describe_targets.push_back(std::move(t).value());
          any = true;
        } else {
          break;
        }
      }
      if (!any) return Err("expected variable, IRI, or * after DESCRIBE");
    }
    if (auto s = ParseDatasetClauses(q); !s.ok()) return s;
    if (IsKeyword("WHERE") || Is(TokenType::kLBrace)) {
      if (auto s = ParseWhereClause(q); !s.ok()) return s;
    }
    return ParseSolutionModifier(q);
  }

  Status ParseDatasetClauses(Query& q) {
    while (AcceptKeyword("FROM")) {
      DatasetClause dc(mr_);
      dc.named = AcceptKeyword("NAMED");
      Result<Term> iri = ParseIri();
      if (!iri.ok()) return iri.status();
      dc.iri = iri.value().value;
      q.dataset.push_back(std::move(dc));
    }
    return Status::OK();
  }

  Status ParseWhereClause(Query& q) {
    AcceptKeyword("WHERE");  // optional before '{'
    Result<Pattern> body = ParseGroupGraphPattern();
    if (!body.ok()) return body.status();
    q.has_body = true;
    q.where = std::move(body).value();
    return Status::OK();
  }

  // --- Solution modifiers ---------------------------------------------------

  Status ParseSolutionModifier(Query& q) {
    if (AcceptKeyword("GROUP")) {
      if (!AcceptKeyword("BY")) return Err("expected BY after GROUP");
      bool any = false;
      for (;;) {
        GroupCondition gc(mr_);
        if (Is(TokenType::kVar)) {
          gc.expr = Expr::MakeVar(Cur().value, mr_);
          Bump();
        } else if (Is(TokenType::kLParen)) {
          Bump();
          Result<Expr> e = ParseExpression();
          if (!e.ok()) return e.status();
          gc.expr = std::move(e).value();
          if (AcceptKeyword("AS")) {
            if (!Is(TokenType::kVar)) return Err("expected variable after AS");
            gc.as_var = Term::Var(Cur().value, mr_);
            Bump();
          }
          if (auto s = Expect(TokenType::kRParen, "GROUP BY"); !s.ok()) {
            return s;
          }
        } else if (Is(TokenType::kIdent) && !AtModifierKeyword() &&
                   Ahead(1).Is(TokenType::kLParen)) {
          Result<Expr> e = ParsePrimaryExpression();
          if (!e.ok()) return e.status();
          gc.expr = std::move(e).value();
        } else if (Is(TokenType::kIriRef) || Is(TokenType::kPName)) {
          Result<Expr> e = ParsePrimaryExpression();
          if (!e.ok()) return e.status();
          gc.expr = std::move(e).value();
        } else {
          break;
        }
        q.group_by.push_back(std::move(gc));
        any = true;
      }
      if (!any) return Err("empty GROUP BY");
    }
    if (AcceptKeyword("HAVING")) {
      bool any = false;
      while (Is(TokenType::kLParen) ||
             (Is(TokenType::kIdent) && !AtModifierKeyword() &&
              Ahead(1).Is(TokenType::kLParen))) {
        Result<Expr> e = ParseConstraint();
        if (!e.ok()) return e.status();
        q.having.push_back(std::move(e).value());
        any = true;
      }
      if (!any) return Err("empty HAVING");
    }
    if (AcceptKeyword("ORDER")) {
      if (!AcceptKeyword("BY")) return Err("expected BY after ORDER");
      bool any = false;
      for (;;) {
        OrderCondition oc(mr_);
        if (AcceptKeyword("ASC") || AcceptKeyword("DESC")) {
          oc.descending = EqualsIgnoreCase(tokens_[idx_ - 1].value, "DESC");
          if (!Is(TokenType::kLParen)) return Err("expected ( after ASC/DESC");
          Bump();
          Result<Expr> e = ParseExpression();
          if (!e.ok()) return e.status();
          oc.expr = std::move(e).value();
          if (auto s = Expect(TokenType::kRParen, "ORDER BY"); !s.ok()) {
            return s;
          }
        } else if (Is(TokenType::kVar)) {
          oc.expr = Expr::MakeVar(Cur().value, mr_);
          Bump();
        } else if (Is(TokenType::kLParen) ||
                   (Is(TokenType::kIdent) && !AtModifierKeyword() &&
                    Ahead(1).Is(TokenType::kLParen))) {
          Result<Expr> e = ParseConstraint();
          if (!e.ok()) return e.status();
          oc.expr = std::move(e).value();
        } else {
          break;
        }
        q.order_by.push_back(std::move(oc));
        any = true;
      }
      if (!any) return Err("empty ORDER BY");
    }
    // LIMIT and OFFSET in either order.
    for (int i = 0; i < 2; ++i) {
      if (AcceptKeyword("LIMIT")) {
        if (!Is(TokenType::kInteger)) return Err("expected integer LIMIT");
        q.limit = ParseUnsigned(Cur().value);
        Bump();
      } else if (AcceptKeyword("OFFSET")) {
        if (!Is(TokenType::kInteger)) return Err("expected integer OFFSET");
        q.offset = ParseUnsigned(Cur().value);
        Bump();
      }
    }
    return Status::OK();
  }

  // --- Group graph patterns -------------------------------------------------

  Result<Pattern> ParseGroupGraphPattern() {
    DepthGuard depth(this);
    if (!depth.ok()) return DepthErr();
    if (auto s = Expect(TokenType::kLBrace, "group graph pattern"); !s.ok()) {
      return s;
    }
    if (IsKeyword("SELECT")) {
      // `{ SELECT ... }` is the subquery itself; do not wrap it in an
      // extra group (keeps the serialization canonical).
      Result<Pattern> sub = ParseSubSelect();
      if (!sub.ok()) return sub;
      if (auto s = Expect(TokenType::kRBrace, "subquery"); !s.ok()) return s;
      return sub;
    }
    AstVector<Pattern> children(mr_);
    if (auto s = ParseTriplesBlock(children); !s.ok()) return s;
    while (!Is(TokenType::kRBrace)) {
      if (Is(TokenType::kEof)) return Err("unterminated group graph pattern");
      if (IsKeyword("FILTER")) {
        Bump();
        Result<Expr> e = ParseConstraint();
        if (!e.ok()) return e.status();
        children.push_back(Pattern::Filter(std::move(e).value()));
      } else if (IsKeyword("OPTIONAL")) {
        Bump();
        Result<Pattern> body = ParseGroupGraphPattern();
        if (!body.ok()) return body;
        children.push_back(Pattern::Optional(std::move(body).value()));
      } else if (IsKeyword("MINUS")) {
        Bump();
        Result<Pattern> body = ParseGroupGraphPattern();
        if (!body.ok()) return body;
        children.push_back(Pattern::Minus(std::move(body).value()));
      } else if (IsKeyword("GRAPH")) {
        Bump();
        Result<Term> iv = ParseVarOrIri();
        if (!iv.ok()) return iv.status();
        Result<Pattern> body = ParseGroupGraphPattern();
        if (!body.ok()) return body;
        children.push_back(
            Pattern::Graph(std::move(iv).value(), std::move(body).value()));
      } else if (IsKeyword("SERVICE")) {
        Bump();
        bool silent = AcceptKeyword("SILENT");
        Result<Term> iv = ParseVarOrIri();
        if (!iv.ok()) return iv.status();
        Result<Pattern> body = ParseGroupGraphPattern();
        if (!body.ok()) return body;
        Pattern p(mr_);
        p.kind = PatternKind::kService;
        p.graph = std::move(iv).value();
        p.silent = silent;
        p.children.push_back(std::move(body).value());
        children.push_back(std::move(p));
      } else if (IsKeyword("BIND")) {
        Bump();
        if (auto s = Expect(TokenType::kLParen, "BIND"); !s.ok()) return s;
        Result<Expr> e = ParseExpression();
        if (!e.ok()) return e.status();
        if (!AcceptKeyword("AS")) return Err("expected AS in BIND");
        if (!Is(TokenType::kVar)) return Err("expected variable in BIND");
        Pattern p(mr_);
        p.kind = PatternKind::kBind;
        p.expr = std::move(e).value();
        p.var = Term::Var(Cur().value, mr_);
        Bump();
        if (auto s = Expect(TokenType::kRParen, "BIND"); !s.ok()) return s;
        children.push_back(std::move(p));
      } else if (IsKeyword("VALUES")) {
        Result<Pattern> values = ParseInlineData();
        if (!values.ok()) return values;
        children.push_back(std::move(values).value());
      } else if (Is(TokenType::kLBrace)) {
        Result<Pattern> gu = ParseGroupOrUnion();
        if (!gu.ok()) return gu;
        children.push_back(std::move(gu).value());
      } else {
        return Err("unexpected " + std::string(TokenTypeName(Cur().type)) +
                   " in group graph pattern");
      }
      Accept(TokenType::kDot);
      if (auto s = ParseTriplesBlock(children); !s.ok()) return s;
    }
    Bump();  // '}'
    return Pattern::Group(std::move(children));
  }

  Result<Pattern> ParseGroupOrUnion() {
    Result<Pattern> first = ParseGroupGraphPattern();
    if (!first.ok()) return first;
    if (!IsKeyword("UNION")) return first;
    AstVector<Pattern> branches(mr_);
    branches.push_back(std::move(first).value());
    while (AcceptKeyword("UNION")) {
      Result<Pattern> next = ParseGroupGraphPattern();
      if (!next.ok()) return next;
      branches.push_back(std::move(next).value());
    }
    return Pattern::Union(std::move(branches));
  }

  Result<Pattern> ParseSubSelect() {
    // allocate_shared keeps the control block and the subquery on the
    // parse resource: the scratch path stays heap-free, the heap path
    // is unchanged (the default resource is operator new).
    auto sub = std::allocate_shared<Query>(
        std::pmr::polymorphic_allocator<Query>(mr_), mr_);
    // Inherit the outer prologue; subqueries cannot re-declare prefixes.
    if (auto s = ParseSelectClause(*sub); !s.ok()) return s;
    if (auto s = ParseWhereClause(*sub); !s.ok()) return s;
    if (auto s = ParseSolutionModifier(*sub); !s.ok()) return s;
    if (IsKeyword("VALUES")) {
      Result<Pattern> values = ParseInlineData();
      if (!values.ok()) return values.status();
      sub->trailing_values = std::move(values).value();
    }
    sub->form = QueryForm::kSelect;
    Pattern p(mr_);
    p.kind = PatternKind::kSubSelect;
    p.subquery = std::move(sub);
    return p;
  }

  Result<Pattern> ParseInlineData() {
    Bump();  // VALUES
    Pattern p(mr_);
    p.kind = PatternKind::kValues;
    bool multi = false;
    if (Is(TokenType::kVar)) {
      p.values_vars.push_back(Term::Var(Cur().value, mr_));
      Bump();
    } else if (Accept(TokenType::kLParen)) {
      multi = true;
      while (Is(TokenType::kVar)) {
        p.values_vars.push_back(Term::Var(Cur().value, mr_));
        Bump();
      }
      if (auto s = Expect(TokenType::kRParen, "VALUES vars"); !s.ok()) {
        return s;
      }
    } else {
      return Err("expected variable(s) after VALUES");
    }
    if (auto s = Expect(TokenType::kLBrace, "VALUES data"); !s.ok()) return s;
    while (!Is(TokenType::kRBrace)) {
      if (Is(TokenType::kEof)) return Err("unterminated VALUES block");
      AstVector<std::optional<Term>> row(mr_);
      if (multi) {
        if (auto s = Expect(TokenType::kLParen, "VALUES row"); !s.ok()) {
          return s;
        }
        while (!Is(TokenType::kRParen)) {
          Result<std::optional<Term>> v = ParseDataBlockValue();
          if (!v.ok()) return v.status();
          row.push_back(std::move(v).value());
        }
        Bump();  // ')'
      } else {
        Result<std::optional<Term>> v = ParseDataBlockValue();
        if (!v.ok()) return v.status();
        row.push_back(std::move(v).value());
      }
      p.values_rows.push_back(std::move(row));
    }
    Bump();  // '}'
    return p;
  }

  Result<std::optional<Term>> ParseDataBlockValue() {
    if (AcceptKeyword("UNDEF")) return std::optional<Term>();
    Result<Term> t = ParseGraphTerm();
    if (!t.ok()) return t.status();
    return std::optional<Term>(std::move(t).value());
  }

  // --- Triples blocks ---------------------------------------------------------

  bool StartsTriple() const {
    switch (Cur().type) {
      case TokenType::kVar:
      case TokenType::kIriRef:
      case TokenType::kPName:
      case TokenType::kBlankLabel:
      case TokenType::kString:
      case TokenType::kInteger:
      case TokenType::kDecimal:
      case TokenType::kDouble:
      case TokenType::kLBracket:
      case TokenType::kLParen:
      case TokenType::kPlus:
      case TokenType::kMinus:
        return true;
      case TokenType::kIdent:
        return EqualsIgnoreCase(Cur().value, "true") ||
               EqualsIgnoreCase(Cur().value, "false");
      default:
        return false;
    }
  }

  Status ParseTriplesBlock(AstVector<Pattern>& out) {
    while (StartsTriple()) {
      if (auto s = ParseTriplesSameSubject(out); !s.ok()) return s;
      if (!Accept(TokenType::kDot)) break;
    }
    return Status::OK();
  }

  Status ParseTriplesTemplate(AstVector<TriplePattern>& out) {
    AstVector<Pattern> tmp(mr_);
    if (auto s = ParseTriplesBlock(tmp); !s.ok()) return s;
    for (Pattern& p : tmp) {
      if (p.kind == PatternKind::kTriple) {
        if (p.triple.has_path) {
          return Err("property path not allowed in CONSTRUCT template");
        }
        out.push_back(std::move(p.triple));
      }
    }
    return Status::OK();
  }

  Status ParseTriplesSameSubject(AstVector<Pattern>& out) {
    Result<Term> subject = ParseVarOrTermOrNode(out);
    if (!subject.ok()) return subject.status();
    // A bare blank-node property list `[ ... ]` may omit the property list.
    if (!StartsVerb()) {
      if (last_node_had_props_) return Status::OK();
      return Err("expected predicate");
    }
    return ParsePropertyList(subject.value(), out);
  }

  bool StartsVerb() const {
    switch (Cur().type) {
      case TokenType::kVar:
      case TokenType::kIriRef:
      case TokenType::kPName:
      case TokenType::kCaret:
      case TokenType::kBang:
      case TokenType::kLParen:
        return true;
      case TokenType::kIdent:
        return EqualsIgnoreCase(Cur().value, "a");
      default:
        return false;
    }
  }

  Status ParsePropertyList(const Term& subject, AstVector<Pattern>& out) {
    for (;;) {
      // Verb: variable or property path (a bare IRI is a trivial path).
      bool is_var_verb = Is(TokenType::kVar);
      Term var_verb(mr_);
      PathExpr path(mr_);
      if (is_var_verb) {
        var_verb = Term::Var(Cur().value, mr_);
        Bump();
      } else {
        Result<PathExpr> p = ParsePath();
        if (!p.ok()) return p.status();
        path = std::move(p).value();
      }
      // Object list. The subject and verb are shared across the list,
      // so copy-assign them into mr_-constructed triples (keeps the
      // copies on the parse resource).
      for (;;) {
        Result<Term> object = ParseVarOrTermOrNode(out);
        if (!object.ok()) return object.status();
        TriplePattern tp(mr_);
        tp.subject = subject;
        if (is_var_verb) {
          tp.predicate = var_verb;
        } else if (path.IsSimpleLink()) {
          tp.predicate = Term::Iri(path.iri, mr_);
        } else {
          tp.has_path = true;
          tp.path = path;
        }
        tp.object = std::move(object).value();
        out.push_back(Pattern::Triple(std::move(tp)));
        if (!Accept(TokenType::kComma)) break;
      }
      if (!Accept(TokenType::kSemicolon)) return Status::OK();
      // Trailing ';' before '.', '}' etc. is legal.
      while (Accept(TokenType::kSemicolon)) {
      }
      if (!StartsVerb()) return Status::OK();
    }
  }

  /// Parses a subject/object position: a variable, a graph term, a
  /// blank-node property list, or an RDF collection. Emits auxiliary
  /// triples for the latter two into `out`.
  Result<Term> ParseVarOrTermOrNode(AstVector<Pattern>& out) {
    // Blank-node property lists and collections nest through here
    // ("[[[[..." / "((((..."), so this is a recursion entry point too.
    DepthGuard depth(this);
    if (!depth.ok()) return DepthErr();
    last_node_had_props_ = false;
    if (Is(TokenType::kVar)) {
      Term t = Term::Var(Cur().value, mr_);
      Bump();
      return t;
    }
    if (Is(TokenType::kLBracket)) {
      Bump();
      Term blank = Term::Blank(FreshBlank(), mr_);
      if (Accept(TokenType::kRBracket)) {
        return blank;  // ANON
      }
      if (auto s = ParsePropertyList(blank, out); !s.ok()) return s;
      if (auto s = Expect(TokenType::kRBracket, "blank node property list");
          !s.ok()) {
        return s;
      }
      last_node_had_props_ = true;
      return blank;
    }
    if (Is(TokenType::kLParen)) {
      // RDF collection: ( e1 e2 ... ) desugars to a first/rest list.
      Bump();
      if (Accept(TokenType::kRParen)) return Term::Iri(kRdfNil, mr_);
      AstVector<Term> elements(mr_);
      while (!Is(TokenType::kRParen)) {
        if (Is(TokenType::kEof)) return Err("unterminated collection");
        Result<Term> e = ParseVarOrTermOrNode(out);
        if (!e.ok()) return e;
        elements.push_back(std::move(e).value());
      }
      Bump();  // ')'
      Term head = Term::Blank(FreshBlank(), mr_);
      Term cur = head;  // blank labels are SSO-small; copying is free
      for (size_t i = 0; i < elements.size(); ++i) {
        TriplePattern first(mr_);
        first.subject = cur;
        first.predicate = Term::Iri(kRdfFirst, mr_);
        first.object = std::move(elements[i]);
        out.push_back(Pattern::Triple(std::move(first)));
        Term next = (i + 1 == elements.size()) ? Term::Iri(kRdfNil, mr_)
                                               : Term::Blank(FreshBlank(), mr_);
        TriplePattern rest(mr_);
        rest.subject = cur;
        rest.predicate = Term::Iri(kRdfRest, mr_);
        rest.object = next;
        out.push_back(Pattern::Triple(std::move(rest)));
        cur = std::move(next);
      }
      last_node_had_props_ = true;
      return head;
    }
    return ParseGraphTerm();
  }

  Result<Term> ParseGraphTerm() {
    switch (Cur().type) {
      case TokenType::kIriRef:
      case TokenType::kPName:
        return ParseIri();
      case TokenType::kBlankLabel: {
        Term t = Term::Blank(Cur().value, mr_);
        Bump();
        return t;
      }
      case TokenType::kString:
        return ParseRdfLiteral();
      case TokenType::kInteger:
      case TokenType::kDecimal:
      case TokenType::kDouble:
      case TokenType::kPlus:
      case TokenType::kMinus:
        return ParseNumericLiteral();
      case TokenType::kIdent:
        if (EqualsIgnoreCase(Cur().value, "true") ||
            EqualsIgnoreCase(Cur().value, "false")) {
          Term t =
              Term::Literal(util::AsciiLower(Cur().value), kXsdBoolean, {},
                            mr_);
          Bump();
          return t;
        }
        {
          std::string msg("unexpected identifier '");
          msg.append(Cur().value).append("'");
          return Err(std::move(msg));
        }
      default:
        return Err(std::string("expected RDF term, found ") +
                   TokenTypeName(Cur().type));
    }
  }

  Result<Term> ParseRdfLiteral() {
    // Token storage outlives the parse; views suffice until the Term
    // factory copies onto mr_.
    std::string_view lexical = Cur().value;
    Bump();
    if (Is(TokenType::kLangTag)) {
      Term t = Term::Literal(lexical, {}, Cur().value, mr_);
      Bump();
      return t;
    }
    if (Accept(TokenType::kCaretCaret)) {
      Result<Term> dt = ParseIri();
      if (!dt.ok()) return dt;
      return Term::Literal(lexical, dt.value().value, {}, mr_);
    }
    return Term::Literal(lexical, {}, {}, mr_);
  }

  Result<Term> ParseNumericLiteral() {
    bool negative = false;
    if (Accept(TokenType::kPlus)) {
      negative = false;
    } else if (Accept(TokenType::kMinus)) {
      negative = true;
    }
    const char* datatype = nullptr;
    switch (Cur().type) {
      case TokenType::kInteger: datatype = kXsdInteger; break;
      case TokenType::kDecimal: datatype = kXsdDecimal; break;
      case TokenType::kDouble: datatype = kXsdDouble; break;
      default:
        return Err("expected numeric literal");
    }
    Term t(mr_);
    t.kind = rdf::TermKind::kLiteral;
    t.value.reserve(Cur().value.size() + 1);
    if (negative) t.value.push_back('-');
    t.value.append(Cur().value);
    t.datatype = datatype;
    Bump();
    return t;
  }

  Result<Term> ParseIri() {
    if (Is(TokenType::kIriRef)) {
      // Resolve against BASE if relative; a pragmatic check suffices here.
      Term t = Term::Iri(Cur().value, mr_);
      Bump();
      return t;
    }
    if (Is(TokenType::kPName)) {
      Result<AstString> full = ExpandPName(Cur().value);
      if (!full.ok()) return full.status();
      Bump();
      Term t(mr_);
      t.kind = rdf::TermKind::kIri;
      t.value = std::move(full).value();
      return t;
    }
    if (IsKeyword("a")) {
      Bump();
      return Term::Iri(kRdfType, mr_);
    }
    return Err(std::string("expected IRI, found ") +
               TokenTypeName(Cur().type));
  }

  Result<Term> ParseVarOrIri() {
    if (Is(TokenType::kVar)) {
      Term t = Term::Var(Cur().value, mr_);
      Bump();
      return t;
    }
    return ParseIri();
  }

  // --- Property paths ---------------------------------------------------------

  Result<PathExpr> ParsePath() { return ParsePathAlternative(); }

  Result<PathExpr> ParsePathAlternative() {
    Result<PathExpr> first = ParsePathSequence();
    if (!first.ok()) return first;
    if (!Is(TokenType::kPipe)) return first;
    AstVector<PathExpr> children(mr_);
    children.push_back(std::move(first).value());
    while (Accept(TokenType::kPipe)) {
      Result<PathExpr> next = ParsePathSequence();
      if (!next.ok()) return next;
      children.push_back(std::move(next).value());
    }
    return PathExpr::Nary(PathKind::kAlt, std::move(children));
  }

  Result<PathExpr> ParsePathSequence() {
    Result<PathExpr> first = ParsePathEltOrInverse();
    if (!first.ok()) return first;
    if (!Is(TokenType::kSlash)) return first;
    AstVector<PathExpr> children(mr_);
    children.push_back(std::move(first).value());
    while (Accept(TokenType::kSlash)) {
      Result<PathExpr> next = ParsePathEltOrInverse();
      if (!next.ok()) return next;
      children.push_back(std::move(next).value());
    }
    return PathExpr::Nary(PathKind::kSeq, std::move(children));
  }

  Result<PathExpr> ParsePathEltOrInverse() {
    if (Accept(TokenType::kCaret)) {
      Result<PathExpr> elt = ParsePathElt();
      if (!elt.ok()) return elt;
      return PathExpr::Unary(PathKind::kInverse, std::move(elt).value());
    }
    return ParsePathElt();
  }

  Result<PathExpr> ParsePathElt() {
    Result<PathExpr> primary = ParsePathPrimary();
    if (!primary.ok()) return primary;
    PathExpr p = std::move(primary).value();
    if (Accept(TokenType::kStar)) {
      return PathExpr::Unary(PathKind::kZeroOrMore, std::move(p));
    }
    if (Accept(TokenType::kPlus)) {
      return PathExpr::Unary(PathKind::kOneOrMore, std::move(p));
    }
    if (Accept(TokenType::kQuestion)) {
      return PathExpr::Unary(PathKind::kZeroOrOne, std::move(p));
    }
    return p;
  }

  Result<PathExpr> ParsePathPrimary() {
    DepthGuard depth(this);
    if (!depth.ok()) return DepthErr();
    if (Accept(TokenType::kBang)) {
      return ParsePathNegatedPropertySet();
    }
    if (Accept(TokenType::kLParen)) {
      Result<PathExpr> inner = ParsePath();
      if (!inner.ok()) return inner;
      if (auto s = Expect(TokenType::kRParen, "path group"); !s.ok()) {
        return s;
      }
      return inner;
    }
    Result<Term> iri = ParseIri();
    if (!iri.ok()) return iri.status();
    return PathExpr::Link(iri.value().value, mr_);
  }

  Result<PathExpr> ParsePathNegatedPropertySet() {
    AstVector<PathExpr> members(mr_);
    auto parse_one = [&]() -> Status {
      bool inverse = Accept(TokenType::kCaret);
      Result<Term> iri = ParseIri();
      if (!iri.ok()) return iri.status();
      PathExpr link = PathExpr::Link(iri.value().value, mr_);
      members.push_back(inverse ? PathExpr::Unary(PathKind::kInverse,
                                                  std::move(link))
                                : std::move(link));
      return Status::OK();
    };
    if (Accept(TokenType::kLParen)) {
      if (!Is(TokenType::kRParen)) {
        if (auto s = parse_one(); !s.ok()) return s;
        while (Accept(TokenType::kPipe)) {
          if (auto s = parse_one(); !s.ok()) return s;
        }
      }
      if (auto s = Expect(TokenType::kRParen, "negated property set");
          !s.ok()) {
        return s;
      }
    } else {
      if (auto s = parse_one(); !s.ok()) return s;
    }
    return PathExpr::Nary(PathKind::kNegated, std::move(members));
  }

  // --- Expressions -----------------------------------------------------------

  Result<Expr> ParseConstraint() {
    if (Is(TokenType::kLParen)) {
      Bump();
      Result<Expr> e = ParseExpression();
      if (!e.ok()) return e;
      if (auto s = Expect(TokenType::kRParen, "constraint"); !s.ok()) {
        return s;
      }
      return e;
    }
    // BuiltInCall or FunctionCall (IRI with arguments).
    return ParsePrimaryExpression();
  }

  Result<Expr> ParseExpression() { return ParseOrExpression(); }

  Result<Expr> ParseOrExpression() {
    Result<Expr> first = ParseAndExpression();
    if (!first.ok()) return first;
    if (!Is(TokenType::kOrOr)) return first;
    Expr e(mr_);
    e.kind = ExprKind::kOr;
    e.args.push_back(std::move(first).value());
    while (Accept(TokenType::kOrOr)) {
      Result<Expr> next = ParseAndExpression();
      if (!next.ok()) return next;
      e.args.push_back(std::move(next).value());
    }
    return e;
  }

  Result<Expr> ParseAndExpression() {
    Result<Expr> first = ParseRelationalExpression();
    if (!first.ok()) return first;
    if (!Is(TokenType::kAndAnd)) return first;
    Expr e(mr_);
    e.kind = ExprKind::kAnd;
    e.args.push_back(std::move(first).value());
    while (Accept(TokenType::kAndAnd)) {
      Result<Expr> next = ParseRelationalExpression();
      if (!next.ok()) return next;
      e.args.push_back(std::move(next).value());
    }
    return e;
  }

  Result<Expr> ParseRelationalExpression() {
    Result<Expr> lhs = ParseAdditiveExpression();
    if (!lhs.ok()) return lhs;
    const char* op = nullptr;
    switch (Cur().type) {
      case TokenType::kEq: op = "="; break;
      case TokenType::kNe: op = "!="; break;
      case TokenType::kLt: op = "<"; break;
      case TokenType::kGt: op = ">"; break;
      case TokenType::kLe: op = "<="; break;
      case TokenType::kGe: op = ">="; break;
      default: break;
    }
    if (op != nullptr) {
      Bump();
      Result<Expr> rhs = ParseAdditiveExpression();
      if (!rhs.ok()) return rhs;
      return Expr::Binary(ExprKind::kCompare, op, std::move(lhs).value(),
                          std::move(rhs).value());
    }
    bool negated = false;
    if (IsKeyword("NOT") && EqualsIgnoreCase(Ahead(1).value, "IN")) {
      Bump();
      negated = true;
    }
    if (AcceptKeyword("IN")) {
      Expr e(mr_);
      e.kind = negated ? ExprKind::kNotIn : ExprKind::kIn;
      e.args.push_back(std::move(lhs).value());
      if (auto s = Expect(TokenType::kLParen, "IN list"); !s.ok()) return s;
      if (!Is(TokenType::kRParen)) {
        for (;;) {
          Result<Expr> item = ParseExpression();
          if (!item.ok()) return item;
          e.args.push_back(std::move(item).value());
          if (!Accept(TokenType::kComma)) break;
        }
      }
      if (auto s = Expect(TokenType::kRParen, "IN list"); !s.ok()) return s;
      return e;
    }
    return lhs;
  }

  Result<Expr> ParseAdditiveExpression() {
    Result<Expr> lhs = ParseMultiplicativeExpression();
    if (!lhs.ok()) return lhs;
    Expr acc = std::move(lhs).value();
    for (;;) {
      const char* op = nullptr;
      if (Is(TokenType::kPlus)) {
        op = "+";
      } else if (Is(TokenType::kMinus)) {
        op = "-";
      } else {
        return acc;
      }
      Bump();
      Result<Expr> rhs = ParseMultiplicativeExpression();
      if (!rhs.ok()) return rhs;
      acc = Expr::Binary(ExprKind::kArith, op, std::move(acc),
                         std::move(rhs).value());
    }
  }

  Result<Expr> ParseMultiplicativeExpression() {
    Result<Expr> lhs = ParseUnaryExpression();
    if (!lhs.ok()) return lhs;
    Expr acc = std::move(lhs).value();
    for (;;) {
      const char* op = nullptr;
      if (Is(TokenType::kStar)) {
        op = "*";
      } else if (Is(TokenType::kSlash)) {
        op = "/";
      } else {
        return acc;
      }
      Bump();
      Result<Expr> rhs = ParseUnaryExpression();
      if (!rhs.ok()) return rhs;
      acc = Expr::Binary(ExprKind::kArith, op, std::move(acc),
                         std::move(rhs).value());
    }
  }

  Result<Expr> ParseUnaryExpression() {
    if (Accept(TokenType::kBang)) {
      Result<Expr> inner = ParseUnaryExpression();
      if (!inner.ok()) return inner;
      Expr e(mr_);
      e.kind = ExprKind::kNot;
      e.args.push_back(std::move(inner).value());
      return e;
    }
    if (Accept(TokenType::kMinus)) {
      Result<Expr> inner = ParseUnaryExpression();
      if (!inner.ok()) return inner;
      Expr e(mr_);
      e.kind = ExprKind::kUnaryMinus;
      e.args.push_back(std::move(inner).value());
      return e;
    }
    if (Accept(TokenType::kPlus)) {
      Result<Expr> inner = ParseUnaryExpression();
      if (!inner.ok()) return inner;
      Expr e(mr_);
      e.kind = ExprKind::kUnaryPlus;
      e.args.push_back(std::move(inner).value());
      return e;
    }
    return ParsePrimaryExpression();
  }

  bool IsAggregateName(std::string_view name) const {
    return EqualsIgnoreCase(name, "COUNT") || EqualsIgnoreCase(name, "SUM") ||
           EqualsIgnoreCase(name, "MIN") || EqualsIgnoreCase(name, "MAX") ||
           EqualsIgnoreCase(name, "AVG") ||
           EqualsIgnoreCase(name, "SAMPLE") ||
           EqualsIgnoreCase(name, "GROUP_CONCAT");
  }

  Result<Expr> ParsePrimaryExpression() {
    DepthGuard depth(this);
    if (!depth.ok()) return DepthErr();
    if (Is(TokenType::kLParen)) {
      Bump();
      Result<Expr> e = ParseExpression();
      if (!e.ok()) return e;
      if (auto s = Expect(TokenType::kRParen, "bracketed expression");
          !s.ok()) {
        return s;
      }
      return e;
    }
    if (Is(TokenType::kVar)) {
      Expr e = Expr::MakeVar(Cur().value, mr_);
      Bump();
      return e;
    }
    if (Is(TokenType::kString)) {
      Result<Term> t = ParseRdfLiteral();
      if (!t.ok()) return t.status();
      return Expr::MakeTerm(std::move(t).value());
    }
    if (Is(TokenType::kInteger) || Is(TokenType::kDecimal) ||
        Is(TokenType::kDouble)) {
      Result<Term> t = ParseNumericLiteral();
      if (!t.ok()) return t.status();
      return Expr::MakeTerm(std::move(t).value());
    }
    if (Is(TokenType::kIdent)) {
      // A view is enough: token storage outlives every use below.
      const std::string_view name = Cur().value;
      if (EqualsIgnoreCase(name, "true") || EqualsIgnoreCase(name, "false")) {
        Bump();
        return Expr::MakeTerm(
            Term::Literal(util::AsciiLower(name), kXsdBoolean, {}, mr_));
      }
      if (EqualsIgnoreCase(name, "EXISTS")) {
        Bump();
        Result<Pattern> p = ParseGroupGraphPattern();
        if (!p.ok()) return p.status();
        Expr e(mr_);
        e.kind = ExprKind::kExists;
        e.pattern = std::allocate_shared<Pattern>(
            std::pmr::polymorphic_allocator<Pattern>(mr_),
            std::move(p).value());
        return e;
      }
      if (EqualsIgnoreCase(name, "NOT") &&
          EqualsIgnoreCase(Ahead(1).value, "EXISTS")) {
        Bump();
        Bump();
        Result<Pattern> p = ParseGroupGraphPattern();
        if (!p.ok()) return p.status();
        Expr e(mr_);
        e.kind = ExprKind::kNotExists;
        e.pattern = std::allocate_shared<Pattern>(
            std::pmr::polymorphic_allocator<Pattern>(mr_),
            std::move(p).value());
        return e;
      }
      if (IsAggregateName(name)) return ParseAggregate();
      if (Ahead(1).Is(TokenType::kLParen)) return ParseFunctionCall();
      std::string msg("unexpected identifier '");
      msg.append(name).append("' in expression");
      return Err(std::move(msg));
    }
    if (Is(TokenType::kIriRef) || Is(TokenType::kPName)) {
      Result<Term> iri = ParseIri();
      if (!iri.ok()) return iri.status();
      if (Is(TokenType::kLParen)) {
        // Extension function call: <iri>(args).
        Result<AstVector<Expr>> args = ParseArgList();
        if (!args.ok()) return args.status();
        return Expr::Call(iri.value().value, std::move(args).value());
      }
      return Expr::MakeTerm(std::move(iri).value());
    }
    return Err(std::string("expected expression, found ") +
               TokenTypeName(Cur().type));
  }

  Result<Expr> ParseAggregate() {
    Expr e(mr_);
    e.kind = ExprKind::kAggregate;
    // Aggregate names fit SSO, so the upper-cased temporary is free.
    e.op = util::AsciiUpper(Cur().value);
    Bump();
    if (auto s = Expect(TokenType::kLParen, "aggregate"); !s.ok()) return s;
    if (AcceptKeyword("DISTINCT")) e.distinct = true;
    if (e.op == "COUNT" && Accept(TokenType::kStar)) {
      e.star = true;
    } else {
      Result<Expr> arg = ParseExpression();
      if (!arg.ok()) return arg;
      e.args.push_back(std::move(arg).value());
    }
    if (e.op == "GROUP_CONCAT" && Accept(TokenType::kSemicolon)) {
      if (!AcceptKeyword("SEPARATOR")) {
        return Err("expected SEPARATOR in GROUP_CONCAT");
      }
      if (auto s = Expect(TokenType::kEq, "GROUP_CONCAT separator"); !s.ok()) {
        return s;
      }
      if (!Is(TokenType::kString)) return Err("expected separator string");
      e.separator = Cur().value;
      Bump();
    }
    if (auto s = Expect(TokenType::kRParen, "aggregate"); !s.ok()) return s;
    return e;
  }

  Result<Expr> ParseFunctionCall() {
    std::string name = util::AsciiUpper(Cur().value);
    Bump();
    Result<AstVector<Expr>> args = ParseArgList();
    if (!args.ok()) return args.status();
    return Expr::Call(name, std::move(args).value());
  }

  Result<AstVector<Expr>> ParseArgList() {
    if (auto s = Expect(TokenType::kLParen, "argument list"); !s.ok()) {
      return s;
    }
    AstVector<Expr> args(mr_);
    AcceptKeyword("DISTINCT");  // tolerated in e.g. custom aggregates
    if (!Is(TokenType::kRParen)) {
      for (;;) {
        Result<Expr> e = ParseExpression();
        if (!e.ok()) return e.status();
        args.push_back(std::move(e).value());
        if (!Accept(TokenType::kComma)) break;
      }
    }
    if (auto s = Expect(TokenType::kRParen, "argument list"); !s.ok()) {
      return s;
    }
    return args;
  }

  const std::vector<Token>& tokens_;
  size_t idx_ = 0;
  const ParserOptions& options_;
  std::pmr::memory_resource* mr_;
  util::StringInterner* pname_cache_;
  /// PREFIX declarations of this query, as views into token storage.
  /// A handful per query at most, so a reverse linear scan beats a map
  /// (and lives on the parse resource, not the heap).
  AstVector<std::pair<std::string_view, std::string_view>> local_prefixes_;
  int blank_counter_ = 0;
  bool last_node_had_props_ = false;
  /// Current nesting depth across the recursive productions (see
  /// DepthGuard / ParserOptions::max_recursion_depth).
  int depth_ = 0;
};

}  // namespace

ParserOptions::PrefixMap ParserOptions::DefaultPrefixes() {
  return {
      {"rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#"},
      {"rdfs", "http://www.w3.org/2000/01/rdf-schema#"},
      {"owl", "http://www.w3.org/2002/07/owl#"},
      {"xsd", "http://www.w3.org/2001/XMLSchema#"},
      {"foaf", "http://xmlns.com/foaf/0.1/"},
      {"dc", "http://purl.org/dc/elements/1.1/"},
      {"dct", "http://purl.org/dc/terms/"},
      {"skos", "http://www.w3.org/2004/02/skos/core#"},
      {"geo", "http://www.w3.org/2003/01/geo/wgs84_pos#"},
      {"dbo", "http://dbpedia.org/ontology/"},
      {"dbp", "http://dbpedia.org/property/"},
      {"dbr", "http://dbpedia.org/resource/"},
      {"wd", "http://www.wikidata.org/entity/"},
      {"wdt", "http://www.wikidata.org/prop/direct/"},
      {"p", "http://www.wikidata.org/prop/"},
      {"ps", "http://www.wikidata.org/prop/statement/"},
      {"pq", "http://www.wikidata.org/prop/qualifier/"},
      {"bd", "http://www.bigdata.com/rdf#"},
      {"wikibase", "http://wikiba.se/ontology#"},
      {"bif", "http://www.openlinksw.com/schemas/bif#"},
      {"lgdo", "http://linkedgeodata.org/ontology/"},
      {"swdf", "http://data.semanticweb.org/ns/swc/ontology#"},
      {"bm", "http://collection.britishmuseum.org/id/ontology/"},
      {"crm", "http://www.cidoc-crm.org/cidoc-crm/"},
      {"biopax", "http://www.biopax.org/release/biopax-level3.owl#"},
      {"ex", "http://example.org/"},
  };
}

Parser::Parser(ParserOptions options) : options_(std::move(options)) {}

Result<Query> Parser::Parse(std::string_view text) const {
  // The token stream (and `text`, which its views point into) must stay
  // alive for the whole parse; the AST copies what it keeps.
  Result<TokenStream> tokens = Lexer::Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Impl impl(tokens.value(), options_, std::pmr::get_default_resource(),
            nullptr);
  return impl.ParseQueryUnit();
}

Result<Query> Parser::Parse(std::string_view text,
                            ParserScratch& scratch) const {
  Status s = Lexer::TokenizeInto(text, scratch.tokens);
  if (!s.ok()) return s;
  // The AST copies every token value it keeps onto the arena, so the
  // token buffer can be clobbered by the next parse on this scratch
  // while earlier Queries stay valid (until scratch.Reset()).
  Impl impl(scratch.tokens, options_, &scratch.arena, &scratch.pnames);
  return impl.ParseQueryUnit();
}

bool Parser::IsValid(std::string_view text) const {
  return Parse(text).ok();
}

Result<Query> ParseQuery(std::string_view text) {
  Parser parser;
  return parser.Parse(text);
}

}  // namespace sparqlog::sparql
