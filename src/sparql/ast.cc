#include "sparql/ast.h"

namespace sparqlog::sparql {

namespace {
// Factories build their result on the same memory_resource as their
// arguments, so arena-built sub-trees compose into arena-built parents
// (moves stay pointer steals; nothing silently deep-copies to the heap).
// pmr containers keep their allocator even when moved-from, so reading
// it off any argument member is always safe.
std::pmr::memory_resource* ResOf(const AstString& s) {
  return s.get_allocator().resource();
}
std::pmr::memory_resource* ResOf(const Term& t) { return ResOf(t.value); }
template <typename T>
std::pmr::memory_resource* ResOf(const AstVector<T>& v) {
  return v.get_allocator().resource();
}
}  // namespace

// ---------------------------------------------------------------------------
// PathExpr
// ---------------------------------------------------------------------------

PathExpr PathExpr::Link(std::string_view iri, std::pmr::memory_resource* mr) {
  PathExpr p(mr);
  p.kind = PathKind::kLink;
  p.iri = iri;
  return p;
}

PathExpr PathExpr::Unary(PathKind k, PathExpr child) {
  PathExpr p(ResOf(child.iri));
  p.kind = k;
  p.children.push_back(std::move(child));
  return p;
}

PathExpr PathExpr::Nary(PathKind k, AstVector<PathExpr> children) {
  PathExpr p(ResOf(children));
  p.kind = k;
  p.children = std::move(children);
  return p;
}

bool PathExpr::operator==(const PathExpr& o) const {
  return kind == o.kind && iri == o.iri && children == o.children;
}

namespace {
// Precedence for printing: alt < seq < unary/primary.
int PathPrec(PathKind k) {
  switch (k) {
    case PathKind::kAlt: return 0;
    case PathKind::kSeq: return 1;
    default: return 2;
  }
}

std::string PathChildString(const PathExpr& parent, const PathExpr& child) {
  std::string s = child.ToString();
  bool parent_unary = parent.kind == PathKind::kZeroOrMore ||
                      parent.kind == PathKind::kOneOrMore ||
                      parent.kind == PathKind::kZeroOrOne ||
                      parent.kind == PathKind::kInverse;
  // Unary path operators apply to a PathPrimary (a link or a negated
  // set); anything else must be bracketed. In particular `(^a)*` must
  // not print as `^a*`, which parses as `^(a*)`.
  bool child_primary =
      child.kind == PathKind::kLink || child.kind == PathKind::kNegated;
  if (PathPrec(child.kind) < PathPrec(parent.kind) ||
      (parent_unary && !child_primary)) {
    return "(" + s + ")";
  }
  return s;
}
}  // namespace

std::string PathExpr::ToString() const {
  switch (kind) {
    case PathKind::kLink:
      return "<" + std::string(iri) + ">";
    case PathKind::kInverse:
      return "^" + PathChildString(*this, children[0]);
    case PathKind::kNegated: {
      std::string out = "!(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += "|";
        out += children[i].ToString();
      }
      return out + ")";
    }
    case PathKind::kSeq:
    case PathKind::kAlt: {
      std::string out;
      const char* sep = kind == PathKind::kSeq ? "/" : "|";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += sep;
        out += PathChildString(*this, children[i]);
      }
      return out;
    }
    case PathKind::kZeroOrMore:
      return PathChildString(*this, children[0]) + "*";
    case PathKind::kOneOrMore:
      return PathChildString(*this, children[0]) + "+";
    case PathKind::kZeroOrOne:
      return PathChildString(*this, children[0]) + "?";
  }
  return "";
}

// ---------------------------------------------------------------------------
// Expr
// ---------------------------------------------------------------------------

Expr::Expr(const Expr& o)
    : kind(o.kind),
      term(o.term),
      op(o.op),
      distinct(o.distinct),
      star(o.star),
      separator(o.separator),
      args(o.args),
      pattern(o.pattern ? std::make_shared<Pattern>(*o.pattern) : nullptr) {}

Expr& Expr::operator=(const Expr& o) {
  if (this != &o) {
    kind = o.kind;
    term = o.term;
    op = o.op;
    distinct = o.distinct;
    star = o.star;
    separator = o.separator;
    args = o.args;
    pattern = o.pattern ? std::make_shared<Pattern>(*o.pattern) : nullptr;
  }
  return *this;
}

Expr Expr::MakeTerm(Term t) {
  Expr e(ResOf(t));
  e.kind = ExprKind::kTerm;
  e.term = std::move(t);
  return e;
}

Expr Expr::MakeVar(std::string_view name, std::pmr::memory_resource* mr) {
  return MakeTerm(Term::Var(name, mr));
}

Expr Expr::Call(std::string_view name, AstVector<Expr> args) {
  Expr e(ResOf(args));
  e.kind = ExprKind::kFunction;
  e.op = name;
  e.args = std::move(args);
  return e;
}

Expr Expr::Binary(ExprKind k, std::string_view op, Expr lhs, Expr rhs) {
  Expr e(ResOf(lhs.args));
  e.kind = k;
  e.op = op;
  e.args.push_back(std::move(lhs));
  e.args.push_back(std::move(rhs));
  return e;
}

void Expr::CollectVariables(std::set<std::string>& out) const {
  if (kind == ExprKind::kTerm) {
    if (term.is_variable()) out.insert(std::string(term.value));
    return;
  }
  for (const Expr& a : args) a.CollectVariables(out);
  if (pattern) pattern->CollectVariables(out);
}

// ---------------------------------------------------------------------------
// TriplePattern
// ---------------------------------------------------------------------------

TriplePattern TriplePattern::Make(Term s, Term p, Term o) {
  TriplePattern tp(ResOf(s));
  tp.subject = std::move(s);
  tp.predicate = std::move(p);
  tp.object = std::move(o);
  return tp;
}

TriplePattern TriplePattern::MakePath(Term s, PathExpr path, Term o) {
  TriplePattern tp(ResOf(s));
  tp.subject = std::move(s);
  tp.has_path = true;
  tp.path = std::move(path);
  tp.object = std::move(o);
  return tp;
}

void TriplePattern::CollectVariables(std::set<std::string>& out) const {
  if (subject.is_variable()) out.insert(std::string(subject.value));
  if (!has_path && predicate.is_variable()) {
    out.insert(std::string(predicate.value));
  }
  if (object.is_variable()) out.insert(std::string(object.value));
}

// ---------------------------------------------------------------------------
// Pattern
// ---------------------------------------------------------------------------

Pattern::Pattern(const Pattern& o)
    : kind(o.kind),
      triple(o.triple),
      children(o.children),
      expr(o.expr),
      var(o.var),
      graph(o.graph),
      silent(o.silent),
      values_vars(o.values_vars),
      values_rows(o.values_rows),
      subquery(o.subquery ? std::make_shared<Query>(*o.subquery) : nullptr) {}

Pattern& Pattern::operator=(const Pattern& o) {
  if (this != &o) {
    kind = o.kind;
    triple = o.triple;
    children = o.children;
    expr = o.expr;
    var = o.var;
    graph = o.graph;
    silent = o.silent;
    values_vars = o.values_vars;
    values_rows = o.values_rows;
    subquery = o.subquery ? std::make_shared<Query>(*o.subquery) : nullptr;
  }
  return *this;
}

Pattern Pattern::Group(AstVector<Pattern> children) {
  Pattern p(ResOf(children));
  p.kind = PatternKind::kGroup;
  p.children = std::move(children);
  return p;
}

Pattern Pattern::Triple(TriplePattern tp) {
  Pattern p(ResOf(tp.subject));
  p.kind = PatternKind::kTriple;
  p.triple = std::move(tp);
  return p;
}

Pattern Pattern::Filter(Expr e) {
  Pattern p(ResOf(e.args));
  p.kind = PatternKind::kFilter;
  p.expr = std::move(e);
  return p;
}

Pattern Pattern::Union(AstVector<Pattern> branches) {
  Pattern p(ResOf(branches));
  p.kind = PatternKind::kUnion;
  p.children = std::move(branches);
  return p;
}

Pattern Pattern::Optional(Pattern body) {
  Pattern p(ResOf(body.children));
  p.kind = PatternKind::kOptional;
  p.children.push_back(std::move(body));
  return p;
}

Pattern Pattern::Minus(Pattern body) {
  Pattern p(ResOf(body.children));
  p.kind = PatternKind::kMinus;
  p.children.push_back(std::move(body));
  return p;
}

Pattern Pattern::Graph(Term iv, Pattern body) {
  Pattern p(ResOf(iv));
  p.kind = PatternKind::kGraph;
  p.graph = std::move(iv);
  p.children.push_back(std::move(body));
  return p;
}

void Pattern::CollectVariables(std::set<std::string>& out) const {
  switch (kind) {
    case PatternKind::kTriple:
      triple.CollectVariables(out);
      return;
    case PatternKind::kFilter:
      expr.CollectVariables(out);
      return;
    case PatternKind::kBind:
      expr.CollectVariables(out);
      if (var.is_variable()) out.insert(std::string(var.value));
      return;
    case PatternKind::kValues:
      for (const Term& v : values_vars) {
        if (v.is_variable()) out.insert(std::string(v.value));
      }
      return;
    case PatternKind::kGraph:
    case PatternKind::kService:
      if (graph.is_variable()) out.insert(std::string(graph.value));
      break;
    case PatternKind::kSubSelect:
      if (subquery && subquery->has_body) {
        subquery->where.CollectVariables(out);
      }
      return;
    default:
      break;
  }
  for (const Pattern& c : children) c.CollectVariables(out);
}

void Pattern::CollectTriples(std::vector<const TriplePattern*>& out) const {
  if (kind == PatternKind::kTriple) {
    out.push_back(&triple);
    return;
  }
  if (kind == PatternKind::kSubSelect || kind == PatternKind::kFilter) {
    return;  // Subquery bodies and EXISTS patterns are counted separately.
  }
  for (const Pattern& c : children) c.CollectTriples(out);
}

void Pattern::CollectInScopeVariables(std::set<std::string>& out) const {
  switch (kind) {
    case PatternKind::kTriple:
      triple.CollectVariables(out);
      return;
    case PatternKind::kFilter:
      return;  // FILTER does not bind variables.
    case PatternKind::kBind:
      if (var.is_variable()) out.insert(std::string(var.value));
      return;
    case PatternKind::kValues:
      for (const Term& v : values_vars) {
        if (v.is_variable()) out.insert(std::string(v.value));
      }
      return;
    case PatternKind::kMinus:
      return;  // MINUS does not expose bindings.
    case PatternKind::kGraph:
    case PatternKind::kService:
      if (graph.is_variable()) out.insert(std::string(graph.value));
      break;
    case PatternKind::kSubSelect:
      if (subquery) {
        if (subquery->select_star && subquery->has_body) {
          subquery->where.CollectInScopeVariables(out);
        } else {
          for (const SelectItem& item : subquery->select_items) {
            out.insert(std::string(item.var.value));
          }
        }
      }
      return;
    default:
      break;
  }
  for (const Pattern& c : children) c.CollectInScopeVariables(out);
}

// ---------------------------------------------------------------------------
// Query
// ---------------------------------------------------------------------------

std::set<std::string> Query::BodyVariables() const {
  std::set<std::string> out;
  if (has_body) where.CollectVariables(out);
  return out;
}

}  // namespace sparqlog::sparql
