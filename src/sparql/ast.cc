#include "sparql/ast.h"

namespace sparqlog::sparql {

// ---------------------------------------------------------------------------
// PathExpr
// ---------------------------------------------------------------------------

PathExpr PathExpr::Link(std::string iri) {
  PathExpr p;
  p.kind = PathKind::kLink;
  p.iri = std::move(iri);
  return p;
}

PathExpr PathExpr::Unary(PathKind k, PathExpr child) {
  PathExpr p;
  p.kind = k;
  p.children.push_back(std::move(child));
  return p;
}

PathExpr PathExpr::Nary(PathKind k, std::vector<PathExpr> children) {
  PathExpr p;
  p.kind = k;
  p.children = std::move(children);
  return p;
}

bool PathExpr::operator==(const PathExpr& o) const {
  return kind == o.kind && iri == o.iri && children == o.children;
}

namespace {
// Precedence for printing: alt < seq < unary/primary.
int PathPrec(PathKind k) {
  switch (k) {
    case PathKind::kAlt: return 0;
    case PathKind::kSeq: return 1;
    default: return 2;
  }
}

std::string PathChildString(const PathExpr& parent, const PathExpr& child) {
  std::string s = child.ToString();
  bool parent_unary = parent.kind == PathKind::kZeroOrMore ||
                      parent.kind == PathKind::kOneOrMore ||
                      parent.kind == PathKind::kZeroOrOne ||
                      parent.kind == PathKind::kInverse;
  // Unary path operators apply to a PathPrimary (a link or a negated
  // set); anything else must be bracketed. In particular `(^a)*` must
  // not print as `^a*`, which parses as `^(a*)`.
  bool child_primary =
      child.kind == PathKind::kLink || child.kind == PathKind::kNegated;
  if (PathPrec(child.kind) < PathPrec(parent.kind) ||
      (parent_unary && !child_primary)) {
    return "(" + s + ")";
  }
  return s;
}
}  // namespace

std::string PathExpr::ToString() const {
  switch (kind) {
    case PathKind::kLink:
      return "<" + iri + ">";
    case PathKind::kInverse:
      return "^" + PathChildString(*this, children[0]);
    case PathKind::kNegated: {
      std::string out = "!(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += "|";
        out += children[i].ToString();
      }
      return out + ")";
    }
    case PathKind::kSeq:
    case PathKind::kAlt: {
      std::string out;
      const char* sep = kind == PathKind::kSeq ? "/" : "|";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += sep;
        out += PathChildString(*this, children[i]);
      }
      return out;
    }
    case PathKind::kZeroOrMore:
      return PathChildString(*this, children[0]) + "*";
    case PathKind::kOneOrMore:
      return PathChildString(*this, children[0]) + "+";
    case PathKind::kZeroOrOne:
      return PathChildString(*this, children[0]) + "?";
  }
  return "";
}

// ---------------------------------------------------------------------------
// Expr
// ---------------------------------------------------------------------------

Expr Expr::MakeTerm(Term t) {
  Expr e;
  e.kind = ExprKind::kTerm;
  e.term = std::move(t);
  return e;
}

Expr Expr::MakeVar(const std::string& name) {
  return MakeTerm(Term::Var(name));
}

Expr Expr::Call(std::string name, std::vector<Expr> args) {
  Expr e;
  e.kind = ExprKind::kFunction;
  e.op = std::move(name);
  e.args = std::move(args);
  return e;
}

Expr Expr::Binary(ExprKind k, std::string op, Expr lhs, Expr rhs) {
  Expr e;
  e.kind = k;
  e.op = std::move(op);
  e.args.push_back(std::move(lhs));
  e.args.push_back(std::move(rhs));
  return e;
}

void Expr::CollectVariables(std::set<std::string>& out) const {
  if (kind == ExprKind::kTerm) {
    if (term.is_variable()) out.insert(term.value);
    return;
  }
  for (const Expr& a : args) a.CollectVariables(out);
  if (pattern) pattern->CollectVariables(out);
}

// ---------------------------------------------------------------------------
// TriplePattern
// ---------------------------------------------------------------------------

TriplePattern TriplePattern::Make(Term s, Term p, Term o) {
  TriplePattern tp;
  tp.subject = std::move(s);
  tp.predicate = std::move(p);
  tp.object = std::move(o);
  return tp;
}

TriplePattern TriplePattern::MakePath(Term s, PathExpr path, Term o) {
  TriplePattern tp;
  tp.subject = std::move(s);
  tp.has_path = true;
  tp.path = std::move(path);
  tp.object = std::move(o);
  return tp;
}

void TriplePattern::CollectVariables(std::set<std::string>& out) const {
  if (subject.is_variable()) out.insert(subject.value);
  if (!has_path && predicate.is_variable()) out.insert(predicate.value);
  if (object.is_variable()) out.insert(object.value);
}

// ---------------------------------------------------------------------------
// Pattern
// ---------------------------------------------------------------------------

Pattern Pattern::Group(std::vector<Pattern> children) {
  Pattern p;
  p.kind = PatternKind::kGroup;
  p.children = std::move(children);
  return p;
}

Pattern Pattern::Triple(TriplePattern tp) {
  Pattern p;
  p.kind = PatternKind::kTriple;
  p.triple = std::move(tp);
  return p;
}

Pattern Pattern::Filter(Expr e) {
  Pattern p;
  p.kind = PatternKind::kFilter;
  p.expr = std::move(e);
  return p;
}

Pattern Pattern::Union(std::vector<Pattern> branches) {
  Pattern p;
  p.kind = PatternKind::kUnion;
  p.children = std::move(branches);
  return p;
}

Pattern Pattern::Optional(Pattern body) {
  Pattern p;
  p.kind = PatternKind::kOptional;
  p.children.push_back(std::move(body));
  return p;
}

Pattern Pattern::Minus(Pattern body) {
  Pattern p;
  p.kind = PatternKind::kMinus;
  p.children.push_back(std::move(body));
  return p;
}

Pattern Pattern::Graph(Term iv, Pattern body) {
  Pattern p;
  p.kind = PatternKind::kGraph;
  p.graph = std::move(iv);
  p.children.push_back(std::move(body));
  return p;
}

void Pattern::CollectVariables(std::set<std::string>& out) const {
  switch (kind) {
    case PatternKind::kTriple:
      triple.CollectVariables(out);
      return;
    case PatternKind::kFilter:
      expr.CollectVariables(out);
      return;
    case PatternKind::kBind:
      expr.CollectVariables(out);
      if (var.is_variable()) out.insert(var.value);
      return;
    case PatternKind::kValues:
      for (const Term& v : values_vars) {
        if (v.is_variable()) out.insert(v.value);
      }
      return;
    case PatternKind::kGraph:
    case PatternKind::kService:
      if (graph.is_variable()) out.insert(graph.value);
      break;
    case PatternKind::kSubSelect:
      if (subquery && subquery->has_body) {
        subquery->where.CollectVariables(out);
      }
      return;
    default:
      break;
  }
  for (const Pattern& c : children) c.CollectVariables(out);
}

void Pattern::CollectTriples(std::vector<const TriplePattern*>& out) const {
  if (kind == PatternKind::kTriple) {
    out.push_back(&triple);
    return;
  }
  if (kind == PatternKind::kSubSelect || kind == PatternKind::kFilter) {
    return;  // Subquery bodies and EXISTS patterns are counted separately.
  }
  for (const Pattern& c : children) c.CollectTriples(out);
}

void Pattern::CollectInScopeVariables(std::set<std::string>& out) const {
  switch (kind) {
    case PatternKind::kTriple:
      triple.CollectVariables(out);
      return;
    case PatternKind::kFilter:
      return;  // FILTER does not bind variables.
    case PatternKind::kBind:
      if (var.is_variable()) out.insert(var.value);
      return;
    case PatternKind::kValues:
      for (const Term& v : values_vars) {
        if (v.is_variable()) out.insert(v.value);
      }
      return;
    case PatternKind::kMinus:
      return;  // MINUS does not expose bindings.
    case PatternKind::kGraph:
    case PatternKind::kService:
      if (graph.is_variable()) out.insert(graph.value);
      break;
    case PatternKind::kSubSelect:
      if (subquery) {
        if (subquery->select_star && subquery->has_body) {
          subquery->where.CollectInScopeVariables(out);
        } else {
          for (const SelectItem& item : subquery->select_items) {
            out.insert(item.var.value);
          }
        }
      }
      return;
    default:
      break;
  }
  for (const Pattern& c : children) c.CollectInScopeVariables(out);
}

// ---------------------------------------------------------------------------
// Query
// ---------------------------------------------------------------------------

std::set<std::string> Query::BodyVariables() const {
  std::set<std::string> out;
  if (has_body) where.CollectVariables(out);
  return out;
}

}  // namespace sparqlog::sparql
