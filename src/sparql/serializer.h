#ifndef SPARQLOG_SPARQL_SERIALIZER_H_
#define SPARQLOG_SPARQL_SERIALIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "sparql/ast.h"
#include "util/fnv.h"

namespace sparqlog::sparql {

/// Byte sink for the canonical serializer. `SerializeTo` streams the
/// canonical text through `Write` in small chunks; sinks decide what to
/// do with the bytes (accumulate, hash, count) without the serializer
/// ever materializing the whole string.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void Write(std::string_view chunk) = 0;
};

/// Accumulates the serialization into a string. `Serialize(q)` is
/// exactly this sink run over `SerializeTo`.
class StringSink final : public Sink {
 public:
  StringSink() { out_.reserve(256); }
  void Write(std::string_view chunk) override { out_.append(chunk); }
  const std::string& str() const& { return out_; }
  std::string str() && { return std::move(out_); }

 private:
  std::string out_;
};

/// Streams the serialization through incremental FNV-1a. The digest is
/// bit-identical to `corpus::HashBytes(Serialize(q))` — the dedup key —
/// with zero allocation.
class HashingSink final : public Sink {
 public:
  void Write(std::string_view chunk) override { hash_.Update(chunk); }
  uint64_t hash() const { return hash_.digest(); }

 private:
  util::Fnv1a hash_;
};

/// Byte counter (e.g. canonical size statistics) — no storage at all.
class CountingSink final : public Sink {
 public:
  void Write(std::string_view chunk) override { bytes_ += chunk.size(); }
  uint64_t bytes() const { return bytes_; }

 private:
  uint64_t bytes_ = 0;
};

/// Streams the canonical serialization of `q` into `sink`.
///
/// The output is canonical (deterministic formatting, full IRIs, one
/// pattern element per line), so the serialized text doubles as a
/// duplicate-detection key: two queries that parse to the same AST
/// serialize identically. Round-trips: Parse(Serialize(q)) == q
/// structurally, which the test suite checks property-style.
void SerializeTo(const Query& q, Sink& sink);

/// Renders an AST back to SPARQL surface syntax — the `StringSink`
/// instantiation of `SerializeTo`.
std::string Serialize(const Query& q);

/// FNV-1a of the canonical serialization, computed without building the
/// canonical string. Equals `corpus::HashBytes(Serialize(q))` exactly.
uint64_t CanonicalHash(const Query& q);

/// Renders a pattern subtree (used in examples and debugging output).
std::string SerializePattern(const Pattern& p, int indent = 0);

/// Renders a single expression.
std::string SerializeExpr(const Expr& e);

/// Renders a triple pattern (subject predicate object, no trailing dot).
std::string SerializeTriple(const TriplePattern& tp);

}  // namespace sparqlog::sparql

#endif  // SPARQLOG_SPARQL_SERIALIZER_H_
