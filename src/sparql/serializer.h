#ifndef SPARQLOG_SPARQL_SERIALIZER_H_
#define SPARQLOG_SPARQL_SERIALIZER_H_

#include <string>

#include "sparql/ast.h"

namespace sparqlog::sparql {

/// Renders an AST back to SPARQL surface syntax.
///
/// The output is canonical (deterministic formatting, full IRIs, one
/// pattern element per line), so serialized text doubles as a
/// duplicate-detection key: two queries that parse to the same AST
/// serialize identically. Round-trips: Parse(Serialize(q)) == q
/// structurally, which the test suite checks property-style.
std::string Serialize(const Query& q);

/// Renders a pattern subtree (used in examples and debugging output).
std::string SerializePattern(const Pattern& p, int indent = 0);

/// Renders a single expression.
std::string SerializeExpr(const Expr& e);

/// Renders a triple pattern (subject predicate object, no trailing dot).
std::string SerializeTriple(const TriplePattern& tp);

}  // namespace sparqlog::sparql

#endif  // SPARQLOG_SPARQL_SERIALIZER_H_
