#include "sparql/termgen.h"

#include <array>
#include <cstddef>

namespace sparqlog::sparql::termgen {

namespace {

constexpr std::string_view kIriBases[] = {
    "http://example.org/",
    "http://dbpedia.org/resource/",
    "http://dbpedia.org/ontology/",
    "http://www.wikidata.org/entity/",
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
    "http://www.w3.org/2000/01/rdf-schema#",
    "http://xmlns.com/foaf/0.1/",
    "urn:uuid:",
    "",  // relative / empty IRIs are legal IRIREFs
};

constexpr std::string_view kXsdDatatypes[] = {
    "http://www.w3.org/2001/XMLSchema#integer",
    "http://www.w3.org/2001/XMLSchema#decimal",
    "http://www.w3.org/2001/XMLSchema#double",
    "http://www.w3.org/2001/XMLSchema#boolean",
    "http://www.w3.org/2001/XMLSchema#string",
    "http://www.w3.org/2001/XMLSchema#dateTime",
};

// Characters legal inside an IRIREF beyond alphanumerics: everything
// above 0x20 except <>"{}|^`\ (mirrors the lexer's IsIriChar).
constexpr std::string_view kIriPunct = "/#?:@!$&'()*+,;=-._~%[]";

constexpr std::string_view kAlnum =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

constexpr std::string_view kNameChars =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789__";

// Adversarial literal alphabet: the serializer's escape set, the
// pass-through control characters, a raw DEL, and high bytes that form
// invalid UTF-8 sequences when combined.
constexpr char kAdversarial[] = {'"',    '\\',   '\n',   '\r',   '\t',
                                 '\b',   '\f',   '\x7f', '\x80', '\xc0',
                                 '\xc3', '\xe2', '\xf0', '\xff', ' '};

char Pick(util::Rng& rng, std::string_view alphabet) {
  return alphabet[rng.Below(alphabet.size())];
}

}  // namespace

std::string_view EscapedLiteralChars() { return "\"\\\n\r\t"; }

std::string IriString(util::Rng& rng) {
  std::string out(kIriBases[rng.Below(std::size(kIriBases))]);
  size_t len = rng.Below(12);
  for (size_t i = 0; i < len; ++i) {
    uint64_t roll = rng.Below(10);
    if (roll < 7) {
      out.push_back(Pick(rng, kAlnum));
    } else if (roll < 9) {
      out.push_back(Pick(rng, kIriPunct));
    } else {
      // Raw non-ASCII byte; the lexer accepts any byte above 0x20
      // inside <...>, valid UTF-8 or not.
      out.push_back(static_cast<char>(0x80 + rng.Below(0x80)));
    }
  }
  return out;
}

std::string LiteralBody(util::Rng& rng, double escape_density) {
  size_t len = rng.Below(16);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    if (rng.Chance(escape_density)) {
      out.push_back(kAdversarial[rng.Below(std::size(kAdversarial))]);
    } else {
      out.push_back(Pick(rng, kAlnum));
    }
  }
  return out;
}

std::string VariableName(util::Rng& rng) {
  size_t len = 1 + rng.Below(8);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) out.push_back(Pick(rng, kNameChars));
  return out;
}

std::string BlankLabel(util::Rng& rng) {
  std::string out;
  out.push_back(Pick(rng, std::string_view(kAlnum.data(), 52)));  // letter
  size_t len = rng.Below(6);
  for (size_t i = 0; i < len; ++i) out.push_back(Pick(rng, kNameChars));
  return out;
}

std::string LanguageTag(util::Rng& rng) {
  constexpr std::string_view kLower = "abcdefghijklmnopqrstuvwxyz";
  std::string out;
  out.push_back(Pick(rng, kLower));
  out.push_back(Pick(rng, kLower));
  if (rng.Chance(0.3)) {
    out.push_back('-');
    size_t len = 1 + rng.Below(3);
    for (size_t i = 0; i < len; ++i) {
      out.push_back(Pick(rng, std::string_view(kAlnum.data() + 26, 36)));
    }
  }
  return out;
}

rdf::Term RandomTerm(util::Rng& rng, const TermGenOptions& options) {
  for (;;) {
    switch (rng.Below(8)) {
      case 0:
      case 1:
      case 2:
        if (!options.allow_variables) continue;
        return rdf::Term::Var(VariableName(rng));
      case 3:
      case 4:
        return rdf::Term::Iri(IriString(rng));
      case 5:
        if (!options.allow_blanks) continue;
        return rdf::Term::Blank(BlankLabel(rng));
      default: {
        if (!options.allow_literals) continue;
        std::string body = LiteralBody(rng, options.escape_density);
        switch (rng.Below(3)) {
          case 0:
            return rdf::Term::Literal(std::move(body));
          case 1:
            return rdf::Term::Literal(std::move(body), "", LanguageTag(rng));
          default:
            return rdf::Term::Literal(
                std::move(body),
                rng.Chance(0.5)
                    ? std::string(kXsdDatatypes[rng.Below(
                          std::size(kXsdDatatypes))])
                    : IriString(rng));
        }
      }
    }
  }
}

}  // namespace sparqlog::sparql::termgen
