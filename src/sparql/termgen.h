#ifndef SPARQLOG_SPARQL_TERMGEN_H_
#define SPARQLOG_SPARQL_TERMGEN_H_

#include <string>
#include <string_view>

#include "rdf/term.h"
#include "util/rng.h"

namespace sparqlog::sparql::termgen {

/// Seedable generation hooks for the syntactic building blocks of a
/// SPARQL query: IRIs, literal bodies (including every escape form the
/// canonical serializer knows), variable names, blank node labels, and
/// language tags. The property-based fuzzer (src/testing) composes
/// these into whole queries; keeping the alphabet knowledge here, next
/// to the lexer/serializer it mirrors, means a lexer alphabet change
/// and its fuzz coverage evolve in the same review.
///
/// Every function is a pure function of the Rng state, so a fixed seed
/// reproduces the exact generation sequence.

/// Options for RandomTerm.
struct TermGenOptions {
  bool allow_variables = true;
  bool allow_blanks = true;
  bool allow_literals = true;
  /// Probability that a literal body draws from the adversarial
  /// alphabet (escape-needing characters, raw control bytes, invalid
  /// UTF-8) instead of plain ASCII.
  double escape_density = 0.4;
};

/// Characters a literal body can contain only via serializer escapes
/// ("\\ \" \n \r \t"). Exposed so tests can assert the fuzz alphabet
/// covers exactly the serializer's escape set.
std::string_view EscapedLiteralChars();

/// A random IRI string over the IRIREF alphabet (never contains a
/// character the lexer rejects inside <...>): a realistic base from a
/// small pool plus a random path suffix, occasionally with %-escapes
/// and raw non-ASCII bytes.
std::string IriString(util::Rng& rng);

/// A random literal body. With probability `escape_density` per
/// character the body draws from the adversarial alphabet: characters
/// the serializer must escape, pass-through control characters, and
/// invalid UTF-8 byte sequences.
std::string LiteralBody(util::Rng& rng, double escape_density);

/// A random variable name ([A-Za-z0-9_]+, no '-', digit start allowed).
std::string VariableName(util::Rng& rng);

/// A random blank node label ([A-Za-z][A-Za-z0-9_]*).
std::string BlankLabel(util::Rng& rng);

/// A random language tag ("en", "de-at", ...).
std::string LanguageTag(util::Rng& rng);

/// A random RDF/SPARQL term: IRI, literal (plain, @lang, or ^^typed),
/// blank node, or variable, weighted toward the forms real logs use.
rdf::Term RandomTerm(util::Rng& rng, const TermGenOptions& options = {});

}  // namespace sparqlog::sparql::termgen

#endif  // SPARQLOG_SPARQL_TERMGEN_H_
