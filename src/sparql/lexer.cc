#include "sparql/lexer.h"

#include <cctype>

namespace sparqlog::sparql {

using util::Result;
using util::Status;

const char* TokenTypeName(TokenType t) {
  switch (t) {
    case TokenType::kEof: return "end of input";
    case TokenType::kIriRef: return "IRI";
    case TokenType::kPName: return "prefixed name";
    case TokenType::kBlankLabel: return "blank node label";
    case TokenType::kVar: return "variable";
    case TokenType::kString: return "string literal";
    case TokenType::kLangTag: return "language tag";
    case TokenType::kInteger: return "integer";
    case TokenType::kDecimal: return "decimal";
    case TokenType::kDouble: return "double";
    case TokenType::kIdent: return "identifier";
    case TokenType::kLBrace: return "'{'";
    case TokenType::kRBrace: return "'}'";
    case TokenType::kLParen: return "'('";
    case TokenType::kRParen: return "')'";
    case TokenType::kLBracket: return "'['";
    case TokenType::kRBracket: return "']'";
    case TokenType::kDot: return "'.'";
    case TokenType::kSemicolon: return "';'";
    case TokenType::kComma: return "','";
    case TokenType::kEq: return "'='";
    case TokenType::kNe: return "'!='";
    case TokenType::kLt: return "'<'";
    case TokenType::kGt: return "'>'";
    case TokenType::kLe: return "'<='";
    case TokenType::kGe: return "'>='";
    case TokenType::kAndAnd: return "'&&'";
    case TokenType::kOrOr: return "'||'";
    case TokenType::kBang: return "'!'";
    case TokenType::kPlus: return "'+'";
    case TokenType::kMinus: return "'-'";
    case TokenType::kStar: return "'*'";
    case TokenType::kSlash: return "'/'";
    case TokenType::kPipe: return "'|'";
    case TokenType::kCaret: return "'^'";
    case TokenType::kCaretCaret: return "'^^'";
    case TokenType::kQuestion: return "'?'";
  }
  return "token";
}

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-';
}

// Characters legal inside an IRIREF (everything except control chars and
// <>"{}|^`\ and space).
bool IsIriChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  if (u <= 0x20) return false;
  switch (c) {
    case '<': case '>': case '"': case '{': case '}':
    case '|': case '^': case '`': case '\\':
      return false;
    default:
      return true;
  }
}

}  // namespace

Lexer::Lexer(std::string_view input) : input_(input) {}

char Lexer::Advance() {
  char c = input_[pos_++];
  if (c == '\n') ++line_;
  return c;
}

Token Lexer::Make(TokenType t, std::string value) const {
  Token tok;
  tok.type = t;
  tok.value = std::move(value);
  tok.pos = token_start_;
  tok.line = token_line_;
  return tok;
}

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
    } else if (c == '#') {
      while (!AtEnd() && Peek() != '\n') Advance();
    } else {
      break;
    }
  }
}

Result<Token> Lexer::Next() {
  SkipWhitespaceAndComments();
  token_start_ = pos_;
  token_line_ = line_;
  if (AtEnd()) return Make(TokenType::kEof);

  char c = Peek();
  switch (c) {
    case '{': Advance(); return Make(TokenType::kLBrace);
    case '}': Advance(); return Make(TokenType::kRBrace);
    case '(': Advance(); return Make(TokenType::kLParen);
    case ')': Advance(); return Make(TokenType::kRParen);
    case '[': Advance(); return Make(TokenType::kLBracket);
    case ']': Advance(); return Make(TokenType::kRBracket);
    case ';': Advance(); return Make(TokenType::kSemicolon);
    case ',': Advance(); return Make(TokenType::kComma);
    case '=': Advance(); return Make(TokenType::kEq);
    case '*': Advance(); return Make(TokenType::kStar);
    case '/': Advance(); return Make(TokenType::kSlash);
    case '|':
      Advance();
      if (Peek() == '|') { Advance(); return Make(TokenType::kOrOr); }
      return Make(TokenType::kPipe);
    case '&':
      Advance();
      if (Peek() == '&') { Advance(); return Make(TokenType::kAndAnd); }
      return Status::InvalidArgument("lex: lone '&' at line " +
                                     std::to_string(token_line_));
    case '^':
      Advance();
      if (Peek() == '^') { Advance(); return Make(TokenType::kCaretCaret); }
      return Make(TokenType::kCaret);
    case '!':
      Advance();
      if (Peek() == '=') { Advance(); return Make(TokenType::kNe); }
      return Make(TokenType::kBang);
    case '>':
      Advance();
      if (Peek() == '=') { Advance(); return Make(TokenType::kGe); }
      return Make(TokenType::kGt);
    case '<':
      return LexIriOrComparison();
    case '+':
      Advance();
      return Make(TokenType::kPlus);
    case '-':
      Advance();
      return Make(TokenType::kMinus);
    case '"':
    case '\'':
      return LexString(c);
    case '@':
      return LexLangTag();
    case '?':
    case '$':
      return LexVar();
    case '_':
      return LexBlankOrName();
    case ':':
      // Default-namespace prefixed name, e.g. ":local".
      return LexIdentOrPName();
    case '.':
      if (std::isdigit(static_cast<unsigned char>(Peek(1)))) {
        return LexNumber();
      }
      Advance();
      return Make(TokenType::kDot);
    default:
      if (std::isdigit(static_cast<unsigned char>(c))) return LexNumber();
      if (IsNameStartChar(c)) return LexIdentOrPName();
      return Status::InvalidArgument(
          std::string("lex: unexpected character '") + c + "' at line " +
          std::to_string(token_line_));
  }
}

Result<Token> Lexer::LexIriOrComparison() {
  // Decide IRIREF vs '<' / '<=': scan ahead for a '>' over legal IRI chars.
  size_t look = pos_ + 1;
  while (look < input_.size() && IsIriChar(input_[look])) ++look;
  if (look < input_.size() && input_[look] == '>') {
    std::string iri(input_.substr(pos_ + 1, look - pos_ - 1));
    pos_ = look + 1;
    return Make(TokenType::kIriRef, std::move(iri));
  }
  Advance();  // consume '<'
  if (Peek() == '=') {
    Advance();
    return Make(TokenType::kLe);
  }
  return Make(TokenType::kLt);
}

Result<Token> Lexer::LexString(char quote) {
  bool long_quote = false;
  Advance();  // first quote
  if (Peek() == quote && Peek(1) == quote) {
    long_quote = true;
    Advance();
    Advance();
  } else if (Peek() == quote) {
    // Empty short string.
    Advance();
    return Make(TokenType::kString, "");
  }
  std::string value;
  while (!AtEnd()) {
    char c = Peek();
    if (c == '\\') {
      Advance();
      if (AtEnd()) break;
      char esc = Advance();
      switch (esc) {
        case 't': value.push_back('\t'); break;
        case 'b': value.push_back('\b'); break;
        case 'n': value.push_back('\n'); break;
        case 'r': value.push_back('\r'); break;
        case 'f': value.push_back('\f'); break;
        case '"': value.push_back('"'); break;
        case '\'': value.push_back('\''); break;
        case '\\': value.push_back('\\'); break;
        case 'u':
        case 'U': {
          // Keep the escape verbatim; code-point decoding is not needed
          // for log analytics.
          value.push_back('\\');
          value.push_back(esc);
          break;
        }
        default:
          return Status::InvalidArgument(
              std::string("lex: bad string escape '\\") + esc +
              "' at line " + std::to_string(line_));
      }
      continue;
    }
    if (long_quote) {
      if (c == quote && Peek(1) == quote && Peek(2) == quote) {
        Advance(); Advance(); Advance();
        return Make(TokenType::kString, std::move(value));
      }
      value.push_back(Advance());
    } else {
      if (c == quote) {
        Advance();
        return Make(TokenType::kString, std::move(value));
      }
      if (c == '\n') {
        return Status::InvalidArgument("lex: newline in string at line " +
                                       std::to_string(line_));
      }
      value.push_back(Advance());
    }
  }
  return Status::InvalidArgument("lex: unterminated string at line " +
                                 std::to_string(token_line_));
}

Result<Token> Lexer::LexNumber() {
  std::string value;
  bool has_dot = false, has_exp = false;
  while (!AtEnd()) {
    char c = Peek();
    if (std::isdigit(static_cast<unsigned char>(c))) {
      value.push_back(Advance());
    } else if (c == '.' && !has_dot && !has_exp &&
               std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      has_dot = true;
      value.push_back(Advance());
    } else if ((c == 'e' || c == 'E') && !has_exp) {
      char next = Peek(1);
      char next2 = Peek(2);
      bool exp_ok = std::isdigit(static_cast<unsigned char>(next)) ||
                    ((next == '+' || next == '-') &&
                     std::isdigit(static_cast<unsigned char>(next2)));
      if (!exp_ok) break;
      has_exp = true;
      value.push_back(Advance());
      if (Peek() == '+' || Peek() == '-') value.push_back(Advance());
    } else {
      break;
    }
  }
  TokenType t = has_exp ? TokenType::kDouble
                        : (has_dot ? TokenType::kDecimal
                                   : TokenType::kInteger);
  return Make(t, std::move(value));
}

Result<Token> Lexer::LexVar() {
  Advance();  // '?' or '$'
  if (!IsNameChar(Peek()) ||
      (!IsNameStartChar(Peek()) &&
       !std::isdigit(static_cast<unsigned char>(Peek())))) {
    // A bare '?' is the zero-or-one path modifier.
    return Make(TokenType::kQuestion);
  }
  std::string name;
  while (!AtEnd() && (IsNameChar(Peek()) ||
                      std::isdigit(static_cast<unsigned char>(Peek())))) {
    if (Peek() == '-') break;  // '-' not allowed in variable names
    name.push_back(Advance());
  }
  if (name.empty()) return Make(TokenType::kQuestion);
  return Make(TokenType::kVar, std::move(name));
}

Result<Token> Lexer::LexBlankOrName() {
  if (Peek(1) == ':') {
    Advance();  // '_'
    Advance();  // ':'
    std::string label;
    while (!AtEnd() && (IsNameChar(Peek()) || Peek() == '.')) {
      label.push_back(Advance());
    }
    // A trailing '.' belongs to the triple, not the label.
    while (!label.empty() && label.back() == '.') {
      label.pop_back();
      --pos_;
    }
    if (label.empty()) {
      return Status::InvalidArgument("lex: empty blank node label at line " +
                                     std::to_string(token_line_));
    }
    return Make(TokenType::kBlankLabel, std::move(label));
  }
  return LexIdentOrPName();
}

Result<Token> Lexer::LexIdentOrPName() {
  std::string name;
  while (!AtEnd() && IsNameChar(Peek())) name.push_back(Advance());
  if (Peek() != ':') {
    if (name.empty()) {
      return Status::InvalidArgument("lex: bad name at line " +
                                     std::to_string(token_line_));
    }
    return Make(TokenType::kIdent, std::move(name));
  }
  // Prefixed name: prefix ':' local. The local part may contain dots
  // (not trailing), %-escapes, and backslash escapes.
  name.push_back(Advance());  // ':'
  while (!AtEnd()) {
    char c = Peek();
    if (IsNameChar(c) || c == ':') {
      name.push_back(Advance());
    } else if (c == '.') {
      name.push_back(Advance());
    } else if (c == '%' &&
               std::isxdigit(static_cast<unsigned char>(Peek(1))) &&
               std::isxdigit(static_cast<unsigned char>(Peek(2)))) {
      name.push_back(Advance());
      name.push_back(Advance());
      name.push_back(Advance());
    } else if (c == '\\' && Peek(1) != '\0') {
      Advance();  // drop the escaping backslash
      name.push_back(Advance());
    } else {
      break;
    }
  }
  while (!name.empty() && name.back() == '.') {
    name.pop_back();
    --pos_;
  }
  return Make(TokenType::kPName, std::move(name));
}

Result<Token> Lexer::LexLangTag() {
  Advance();  // '@'
  std::string tag;
  while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                      Peek() == '-')) {
    tag.push_back(Advance());
  }
  if (tag.empty()) {
    return Status::InvalidArgument("lex: empty language tag at line " +
                                   std::to_string(token_line_));
  }
  return Make(TokenType::kLangTag, std::move(tag));
}

Result<std::vector<Token>> Lexer::Tokenize(std::string_view input) {
  Lexer lexer(input);
  std::vector<Token> out;
  for (;;) {
    Result<Token> tok = lexer.Next();
    if (!tok.ok()) return tok.status();
    bool eof = tok.value().Is(TokenType::kEof);
    out.push_back(std::move(tok).value());
    if (eof) return out;
  }
}

}  // namespace sparqlog::sparql
