#include "sparql/lexer.h"

#include <cstring>
#include <string>

#include "util/ascii.h"
#include "util/simd_scan.h"

namespace sparqlog::sparql {

using util::AsciiClassOf;
using util::IsAsciiDigit;
using util::IsAsciiXdigit;
using util::IsNameStartChar;
using util::Result;
using util::Status;

namespace scan = util::scan;

const char* TokenTypeName(TokenType t) {
  switch (t) {
    case TokenType::kEof: return "end of input";
    case TokenType::kIriRef: return "IRI";
    case TokenType::kPName: return "prefixed name";
    case TokenType::kBlankLabel: return "blank node label";
    case TokenType::kVar: return "variable";
    case TokenType::kString: return "string literal";
    case TokenType::kLangTag: return "language tag";
    case TokenType::kInteger: return "integer";
    case TokenType::kDecimal: return "decimal";
    case TokenType::kDouble: return "double";
    case TokenType::kIdent: return "identifier";
    case TokenType::kLBrace: return "'{'";
    case TokenType::kRBrace: return "'}'";
    case TokenType::kLParen: return "'('";
    case TokenType::kRParen: return "')'";
    case TokenType::kLBracket: return "'['";
    case TokenType::kRBracket: return "']'";
    case TokenType::kDot: return "'.'";
    case TokenType::kSemicolon: return "';'";
    case TokenType::kComma: return "','";
    case TokenType::kEq: return "'='";
    case TokenType::kNe: return "'!='";
    case TokenType::kLt: return "'<'";
    case TokenType::kGt: return "'>'";
    case TokenType::kLe: return "'<='";
    case TokenType::kGe: return "'>='";
    case TokenType::kAndAnd: return "'&&'";
    case TokenType::kOrOr: return "'||'";
    case TokenType::kBang: return "'!'";
    case TokenType::kPlus: return "'+'";
    case TokenType::kMinus: return "'-'";
    case TokenType::kStar: return "'*'";
    case TokenType::kSlash: return "'/'";
    case TokenType::kPipe: return "'|'";
    case TokenType::kCaret: return "'^'";
    case TokenType::kCaretCaret: return "'^^'";
    case TokenType::kQuestion: return "'?'";
  }
  return "token";
}

namespace {

Status ErrorAt(std::string_view what, size_t line, size_t col) {
  std::string msg;
  msg.reserve(what.size() + 48);
  msg.append("lex: ")
      .append(what)
      .append(" at line ")
      .append(std::to_string(line))
      .append(", column ")
      .append(std::to_string(col));
  return Status::InvalidArgument(std::move(msg));
}

}  // namespace

Lexer::Lexer(std::string_view input) : input_(input) {}

char Lexer::Advance() {
  char c = input_[pos_++];
  if (c == '\n') {
    ++line_;
    line_start_ = pos_;
  }
  return c;
}

Token Lexer::Make(TokenType t, std::string_view value) const {
  Token tok;
  tok.type = t;
  tok.value = value;
  tok.pos = token_start_;
  tok.line = token_line_;
  tok.col = token_col_;
  return tok;
}

Token Lexer::MakeOwned(TokenType t, std::string&& value) {
  if (!owned_) owned_ = std::make_unique<std::deque<std::string>>();
  owned_->push_back(std::move(value));
  return Make(t, owned_->back());
}

Status Lexer::Error(std::string_view what) const {
  return ErrorAt(what, token_line_, token_col_);
}

/// Bulk line/column bookkeeping: account for every newline inside
/// input_[pos_, end) as if it had been consumed by Advance().
void Lexer::CountNewlines(size_t begin, size_t end) {
  const char* base = input_.data();
  const char* p = base + begin;
  const char* limit = base + end;
  while (p < limit) {
    const char* nl = static_cast<const char*>(
        std::memchr(p, '\n', static_cast<size_t>(limit - p)));
    if (nl == nullptr) break;
    ++line_;
    p = nl + 1;
    line_start_ = static_cast<size_t>(p - base);
  }
}

void Lexer::SkipWhitespaceAndComments() {
  while (pos_ < input_.size()) {
    const size_t end = scan::WhitespaceRun(input_, pos_);
    if (end != pos_) {
      CountNewlines(pos_, end);
      pos_ = end;
    }
    if (pos_ < input_.size() && input_[pos_] == '#') {
      // Skip to (not past) the newline; the next whitespace pass
      // consumes it and keeps the line count exact.
      const size_t nl = input_.find('\n', pos_);
      pos_ = nl == std::string_view::npos ? input_.size() : nl;
      continue;
    }
    break;
  }
}

Result<Token> Lexer::Next() {
  SkipWhitespaceAndComments();
  token_start_ = pos_;
  token_line_ = line_;
  token_col_ = pos_ - line_start_ + 1;
  if (AtEnd()) return Make(TokenType::kEof);

  char c = Peek();
  switch (c) {
    case '{': Advance(); return Make(TokenType::kLBrace);
    case '}': Advance(); return Make(TokenType::kRBrace);
    case '(': Advance(); return Make(TokenType::kLParen);
    case ')': Advance(); return Make(TokenType::kRParen);
    case '[': Advance(); return Make(TokenType::kLBracket);
    case ']': Advance(); return Make(TokenType::kRBracket);
    case ';': Advance(); return Make(TokenType::kSemicolon);
    case ',': Advance(); return Make(TokenType::kComma);
    case '=': Advance(); return Make(TokenType::kEq);
    case '*': Advance(); return Make(TokenType::kStar);
    case '/': Advance(); return Make(TokenType::kSlash);
    case '|':
      Advance();
      if (Peek() == '|') { Advance(); return Make(TokenType::kOrOr); }
      return Make(TokenType::kPipe);
    case '&':
      Advance();
      if (Peek() == '&') { Advance(); return Make(TokenType::kAndAnd); }
      return Error("lone '&'");
    case '^':
      Advance();
      if (Peek() == '^') { Advance(); return Make(TokenType::kCaretCaret); }
      return Make(TokenType::kCaret);
    case '!':
      Advance();
      if (Peek() == '=') { Advance(); return Make(TokenType::kNe); }
      return Make(TokenType::kBang);
    case '>':
      Advance();
      if (Peek() == '=') { Advance(); return Make(TokenType::kGe); }
      return Make(TokenType::kGt);
    case '<':
      return LexIriOrComparison();
    case '+':
      Advance();
      return Make(TokenType::kPlus);
    case '-':
      Advance();
      return Make(TokenType::kMinus);
    case '"':
    case '\'':
      return LexString(c);
    case '@':
      return LexLangTag();
    case '?':
    case '$':
      return LexVar();
    case '_':
      return LexBlankOrName();
    case ':':
      // Default-namespace prefixed name, e.g. ":local".
      return LexIdentOrPName();
    case '.':
      if (IsAsciiDigit(Peek(1))) {
        return LexNumber();
      }
      Advance();
      return Make(TokenType::kDot);
    default:
      if (IsAsciiDigit(c)) return LexNumber();
      if (IsNameStartChar(c)) return LexIdentOrPName();
      std::string what("unexpected character '");
      what.push_back(c);
      what.push_back('\'');
      return Error(what);
  }
}

Result<Token> Lexer::LexIriOrComparison() {
  // Decide IRIREF vs '<' / '<=': scan ahead for a '>' over legal IRI chars.
  const size_t look = scan::IriRun(input_, pos_ + 1);
  if (look < input_.size() && input_[look] == '>') {
    // IRI chars exclude newlines, so the jump cannot cross a line.
    std::string_view iri = input_.substr(pos_ + 1, look - pos_ - 1);
    pos_ = look + 1;
    return Make(TokenType::kIriRef, iri);
  }
  Advance();  // consume '<'
  if (Peek() == '=') {
    Advance();
    return Make(TokenType::kLe);
  }
  return Make(TokenType::kLt);
}

Result<Token> Lexer::LexString(char quote) {
  bool long_quote = false;
  Advance();  // first quote
  if (Peek() == quote && Peek(1) == quote) {
    long_quote = true;
    Advance();
    Advance();
  } else if (Peek() == quote) {
    // Empty short string.
    Advance();
    return Make(TokenType::kString, std::string_view());
  }

  // Fast path: vector-scan for the closing quote; if no escape
  // intervenes the value is the raw slice and nothing is copied.
  const size_t content_start = pos_;
  size_t i = content_start;
  bool clean = true;
  size_t content_end = std::string_view::npos;
  while (i < input_.size()) {
    i = scan::FindStringStop(input_, i, quote, long_quote);
    if (i >= input_.size()) break;
    const char c = input_[i];
    if (c == '\\') {
      clean = false;
      break;
    }
    if (long_quote) {
      if (i + 2 < input_.size() && input_[i + 1] == quote &&
          input_[i + 2] == quote) {
        content_end = i;
        break;
      }
      ++i;  // lone or doubled quote inside a long string
    } else {
      if (c == '\n') {
        clean = false;  // slow loop reports the error position
        break;
      }
      content_end = i;
      break;
    }
  }
  if (clean && content_end != std::string_view::npos) {
    std::string_view value =
        input_.substr(content_start, content_end - content_start);
    // Long strings may span lines; keep the line/column bookkeeping
    // exact without per-character Advance().
    CountNewlines(content_start, content_end);
    pos_ = content_end + (long_quote ? 3 : 1);
    return Make(TokenType::kString, value);
  }

  // Slow path: the string contains escapes (or an error); materialize.
  std::string value;
  while (!AtEnd()) {
    char c = Peek();
    if (c == '\\') {
      Advance();
      if (AtEnd()) break;
      char esc = Advance();
      switch (esc) {
        case 't': value.push_back('\t'); break;
        case 'b': value.push_back('\b'); break;
        case 'n': value.push_back('\n'); break;
        case 'r': value.push_back('\r'); break;
        case 'f': value.push_back('\f'); break;
        case '"': value.push_back('"'); break;
        case '\'': value.push_back('\''); break;
        case '\\': value.push_back('\\'); break;
        case 'u':
        case 'U': {
          // Keep the escape verbatim; code-point decoding is not needed
          // for log analytics.
          value.push_back('\\');
          value.push_back(esc);
          break;
        }
        default: {
          std::string what("bad string escape '\\");
          what.push_back(esc);
          what.push_back('\'');
          return ErrorAt(what, line_, pos_ - line_start_ + 1);
        }
      }
      continue;
    }
    if (long_quote) {
      if (c == quote && Peek(1) == quote && Peek(2) == quote) {
        Advance(); Advance(); Advance();
        return MakeOwned(TokenType::kString, std::move(value));
      }
      value.push_back(Advance());
    } else {
      if (c == quote) {
        Advance();
        return MakeOwned(TokenType::kString, std::move(value));
      }
      if (c == '\n') {
        return ErrorAt("newline in string", line_, pos_ - line_start_ + 1);
      }
      value.push_back(Advance());
    }
  }
  return Error("unterminated string");
}

Result<Token> Lexer::LexNumber() {
  const size_t start = pos_;
  bool has_dot = false, has_exp = false;
  while (!AtEnd()) {
    char c = Peek();
    if (IsAsciiDigit(c)) {
      pos_ = scan::DigitRun(input_, pos_);  // digits never contain '\n'
    } else if (c == '.' && !has_dot && !has_exp && IsAsciiDigit(Peek(1))) {
      has_dot = true;
      Advance();
    } else if ((c == 'e' || c == 'E') && !has_exp) {
      char next = Peek(1);
      char next2 = Peek(2);
      bool exp_ok = IsAsciiDigit(next) ||
                    ((next == '+' || next == '-') && IsAsciiDigit(next2));
      if (!exp_ok) break;
      has_exp = true;
      Advance();
      if (Peek() == '+' || Peek() == '-') Advance();
    } else {
      break;
    }
  }
  TokenType t = has_exp ? TokenType::kDouble
                        : (has_dot ? TokenType::kDecimal
                                   : TokenType::kInteger);
  return Make(t, Slice(start));
}

Result<Token> Lexer::LexVar() {
  Advance();  // '?' or '$'
  if ((AsciiClassOf(Peek()) & util::kAsciiVarChar) == 0) {
    // A bare '?' is the zero-or-one path modifier.
    return Make(TokenType::kQuestion);
  }
  const size_t start = pos_;
  pos_ = scan::VarRun(input_, pos_);  // var chars never contain '\n'
  return Make(TokenType::kVar, Slice(start));
}

Result<Token> Lexer::LexBlankOrName() {
  if (Peek(1) == ':') {
    Advance();  // '_'
    Advance();  // ':'
    const size_t start = pos_;
    pos_ = scan::BlankLabelRun(input_, pos_);
    // A trailing '.' belongs to the triple, not the label.
    while (pos_ > start && input_[pos_ - 1] == '.') {
      --pos_;
    }
    if (pos_ == start) {
      return Error("empty blank node label");
    }
    return Make(TokenType::kBlankLabel, Slice(start));
  }
  return LexIdentOrPName();
}

Result<Token> Lexer::LexIdentOrPName() {
  const size_t start = pos_;
  pos_ = scan::NameRun(input_, pos_);
  if (Peek() != ':') {
    if (pos_ == start) {
      return Error("bad name");
    }
    return Make(TokenType::kIdent, Slice(start));
  }
  // Prefixed name: prefix ':' local. The local part may contain dots
  // (not trailing), %-escapes, and backslash escapes. Backslash escapes
  // drop a character, so only they force a copy; everything else is the
  // raw slice.
  Advance();  // ':'
  std::string owned;  // engaged after the first backslash escape
  bool materialized = false;
  while (!AtEnd()) {
    char c = Peek();
    if ((AsciiClassOf(c) & util::kAsciiPnLocal) != 0) {
      const size_t run_start = pos_;
      pos_ = scan::PnLocalRun(input_, pos_);  // class excludes '\n'
      if (materialized) {
        owned.append(input_.substr(run_start, pos_ - run_start));
      }
    } else if (c == '%' && IsAsciiXdigit(Peek(1)) && IsAsciiXdigit(Peek(2))) {
      if (materialized) {
        owned.push_back(c);
        owned.push_back(Peek(1));
        owned.push_back(Peek(2));
      }
      pos_ += 3;  // '%' and two hex digits; none can be '\n'
    } else if (c == '\\' && Peek(1) != '\0') {
      if (!materialized) {
        materialized = true;
        owned.assign(Slice(start));
      }
      Advance();  // drop the escaping backslash
      owned.push_back(Advance());
    } else {
      break;
    }
  }
  if (!materialized) {
    while (pos_ > start && input_[pos_ - 1] == '.') --pos_;
    return Make(TokenType::kPName, Slice(start));
  }
  while (!owned.empty() && owned.back() == '.') {
    owned.pop_back();
    --pos_;
  }
  return MakeOwned(TokenType::kPName, std::move(owned));
}

Result<Token> Lexer::LexLangTag() {
  Advance();  // '@'
  const size_t start = pos_;
  pos_ = scan::LangTagRun(input_, pos_);
  if (pos_ == start) {
    return Error("empty language tag");
  }
  return Make(TokenType::kLangTag, Slice(start));
}

Result<TokenStream> Lexer::Tokenize(std::string_view input) {
  TokenStream out;
  Status s = TokenizeInto(input, out);
  if (!s.ok()) return s;
  return out;
}

Status Lexer::TokenizeInto(std::string_view input, TokenStream& out) {
  Lexer lexer(input);
  // Recycle the previous run's side buffer: clearing a deque keeps its
  // block map, so repeated escaped-string inputs stop allocating.
  lexer.owned_ = std::move(out.owned_);
  if (lexer.owned_) lexer.owned_->clear();
  out.tokens_.clear();
  // ~6 bytes/token on typical query text; one growth step at most for
  // the common case instead of log2(n) doublings.
  if (out.tokens_.capacity() < input.size() / 6 + 2) {
    out.tokens_.reserve(input.size() / 6 + 2);
  }
  for (;;) {
    Result<Token> tok = lexer.Next();
    if (!tok.ok()) {
      out.tokens_.clear();
      out.owned_ = std::move(lexer.owned_);  // keep storage for next call
      return tok.status();
    }
    bool eof = tok.value().Is(TokenType::kEof);
    out.tokens_.push_back(tok.value());
    if (eof) break;
  }
  // Moving a deque transfers its buffers, so token views into `owned_`
  // stay valid inside the returned stream.
  out.owned_ = std::move(lexer.owned_);
  return Status::OK();
}

}  // namespace sparqlog::sparql
