#ifndef SPARQLOG_SPARQL_LEXER_H_
#define SPARQLOG_SPARQL_LEXER_H_

#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sparql/token.h"
#include "util/result.h"

namespace sparqlog::sparql {

/// The result of lexing a whole input: the tokens plus the backing
/// storage for the few values that had to be materialized (strings with
/// escapes, prefixed names with backslash escapes). Everything else is
/// a view into the caller's input, so the input must outlive the
/// stream. Move-only semantics are safe: moving the side buffer (a
/// deque) never relocates its strings, so token views stay valid.
class TokenStream {
 public:
  TokenStream() = default;
  TokenStream(TokenStream&&) = default;
  TokenStream& operator=(TokenStream&&) = default;
  TokenStream(const TokenStream&) = delete;
  TokenStream& operator=(const TokenStream&) = delete;

  const std::vector<Token>& tokens() const { return tokens_; }
  size_t size() const { return tokens_.size(); }
  const Token& operator[](size_t i) const { return tokens_[i]; }
  std::vector<Token>::const_iterator begin() const { return tokens_.begin(); }
  std::vector<Token>::const_iterator end() const { return tokens_.end(); }

 private:
  friend class Lexer;
  std::vector<Token> tokens_;
  /// Owns materialized token values; deque for address stability.
  /// Allocated lazily — the common all-views case never touches it
  /// (a default-constructed deque would eagerly allocate its map).
  std::unique_ptr<std::deque<std::string>> owned_;
};

/// Hand-written lexer for SPARQL 1.1 query text.
///
/// Handles comments, all literal forms (single/double/long quotes,
/// numeric, boolean as idents), IRIs vs. comparison operators, prefixed
/// names with dot/%-escape rules, variables, blank node labels, and the
/// multi-character operators (&&, ||, ^^, !=, <=, >=).
///
/// Token values are zero-copy slices of the input wherever the value
/// equals its spelling; only escaped strings and escaped prefixed names
/// allocate (into a side buffer owned by the lexer / token stream).
class Lexer {
 public:
  explicit Lexer(std::string_view input);

  /// Lexes the next token, advancing the cursor. The returned token's
  /// value stays valid while both the input and this lexer are alive.
  util::Result<Token> Next();

  /// Lexes the entire input. Fails on the first lexical error. Token
  /// values view into `input` (which must outlive the stream) or into
  /// the stream's own side buffer.
  static util::Result<TokenStream> Tokenize(std::string_view input);

  /// Allocation-reusing variant of Tokenize: refills `out` in place,
  /// recycling its token vector capacity and side-buffer storage from a
  /// previous run. On error `out` is left empty. All views previously
  /// handed out by `out` are invalidated either way.
  static util::Status TokenizeInto(std::string_view input, TokenStream& out);

 private:
  void SkipWhitespaceAndComments();
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  char Advance();
  /// Accounts for every newline in input_[begin, end) — the bulk
  /// equivalent of Advance()'s line/column bookkeeping, used after a
  /// vector scan jumped the cursor over multiple lines at once.
  void CountNewlines(size_t begin, size_t end);
  /// Input slice [begin, pos_).
  std::string_view Slice(size_t begin) const {
    return input_.substr(begin, pos_ - begin);
  }
  Token Make(TokenType t, std::string_view value = {}) const;
  /// Makes a token whose value needed unescaping: parks the string in
  /// the side buffer and views it.
  Token MakeOwned(TokenType t, std::string&& value);
  /// Builds "lex: <what> at line L, column C" with a single allocation.
  util::Status Error(std::string_view what) const;

  util::Result<Token> LexIriOrComparison();
  util::Result<Token> LexString(char quote);
  util::Result<Token> LexNumber();
  util::Result<Token> LexVar();
  util::Result<Token> LexBlankOrName();
  util::Result<Token> LexIdentOrPName();
  util::Result<Token> LexLangTag();

  std::string_view input_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t line_start_ = 0;  ///< byte offset where the current line begins
  size_t token_start_ = 0;
  size_t token_line_ = 1;
  size_t token_col_ = 1;
  /// Lazily allocated: only escaped strings / prefixed names park here.
  std::unique_ptr<std::deque<std::string>> owned_;
};

}  // namespace sparqlog::sparql

#endif  // SPARQLOG_SPARQL_LEXER_H_
