#ifndef SPARQLOG_SPARQL_LEXER_H_
#define SPARQLOG_SPARQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "sparql/token.h"
#include "util/result.h"

namespace sparqlog::sparql {

/// Hand-written lexer for SPARQL 1.1 query text.
///
/// Handles comments, all literal forms (single/double/long quotes,
/// numeric, boolean as idents), IRIs vs. comparison operators, prefixed
/// names with dot/%-escape rules, variables, blank node labels, and the
/// multi-character operators (&&, ||, ^^, !=, <=, >=).
class Lexer {
 public:
  explicit Lexer(std::string_view input);

  /// Lexes the next token, advancing the cursor.
  util::Result<Token> Next();

  /// Lexes the entire input. Fails on the first lexical error.
  static util::Result<std::vector<Token>> Tokenize(std::string_view input);

 private:
  void SkipWhitespaceAndComments();
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  char Advance();
  Token Make(TokenType t, std::string value = "") const;

  util::Result<Token> LexIriOrComparison();
  util::Result<Token> LexString(char quote);
  util::Result<Token> LexNumber();
  util::Result<Token> LexVar();
  util::Result<Token> LexBlankOrName();
  util::Result<Token> LexIdentOrPName();
  util::Result<Token> LexLangTag();

  std::string_view input_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t token_start_ = 0;
  size_t token_line_ = 1;
};

}  // namespace sparqlog::sparql

#endif  // SPARQLOG_SPARQL_LEXER_H_
