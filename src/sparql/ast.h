#ifndef SPARQLOG_SPARQL_AST_H_
#define SPARQLOG_SPARQL_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "rdf/term.h"

namespace sparqlog::sparql {

using rdf::Term;

// ---------------------------------------------------------------------------
// Property paths (SPARQL 1.1). A property path is a regular expression over
// the alphabet of IRIs (Section 3 of the paper).
// ---------------------------------------------------------------------------

enum class PathKind {
  kLink,        ///< A single IRI step `a`.
  kInverse,     ///< `^p` — traverse an edge in reverse.
  kNegated,     ///< `!(a|^b|...)` — any edge not in the set.
  kSeq,         ///< `p1/p2/...` — concatenation.
  kAlt,         ///< `p1|p2|...` — alternation.
  kZeroOrMore,  ///< `p*`.
  kOneOrMore,   ///< `p+`.
  kZeroOrOne,   ///< `p?`.
};

/// AST of a property path expression.
struct PathExpr {
  PathKind kind = PathKind::kLink;
  /// IRI for kLink nodes.
  std::string iri;
  /// Sub-expressions: 1 for unary kinds, >= 2 for kSeq/kAlt, and the
  /// (kLink/kInverse) members of a kNegated set.
  std::vector<PathExpr> children;

  static PathExpr Link(std::string iri);
  static PathExpr Unary(PathKind k, PathExpr child);
  static PathExpr Nary(PathKind k, std::vector<PathExpr> children);

  /// True iff the path is a bare IRI (then the triple pattern it occurs in
  /// is an ordinary triple).
  bool IsSimpleLink() const { return kind == PathKind::kLink; }

  bool operator==(const PathExpr& o) const;

  /// Surface syntax, fully parenthesized where needed.
  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Expressions: filter constraints, projection expressions, HAVING, ORDER BY.
// ---------------------------------------------------------------------------

struct Pattern;  // forward declaration; Expr can hold EXISTS { Pattern }

enum class ExprKind {
  kTerm,        ///< A variable or RDF term.
  kOr,          ///< `a || b` (n-ary).
  kAnd,         ///< `a && b` (n-ary).
  kNot,         ///< `!a`.
  kCompare,     ///< `a OP b`, OP in {=, !=, <, >, <=, >=}.
  kIn,          ///< `a IN (b, c, ...)`.
  kNotIn,       ///< `a NOT IN (b, c, ...)`.
  kArith,       ///< `a OP b`, OP in {+, -, *, /}.
  kUnaryMinus,  ///< `-a`.
  kUnaryPlus,   ///< `+a`.
  kFunction,    ///< Builtin or extension function call `f(args...)`.
  kAggregate,   ///< COUNT/SUM/MIN/MAX/AVG/SAMPLE/GROUP_CONCAT.
  kExists,      ///< `EXISTS { P }`.
  kNotExists,   ///< `NOT EXISTS { P }`.
};

/// A SPARQL expression tree.
struct Expr {
  ExprKind kind = ExprKind::kTerm;
  /// For kTerm: the term.
  Term term;
  /// Operator symbol (kCompare/kArith) or (upper-cased) function or
  /// aggregate name (kFunction/kAggregate).
  std::string op;
  /// DISTINCT inside an aggregate, e.g. COUNT(DISTINCT ?x).
  bool distinct = false;
  /// COUNT(*).
  bool star = false;
  /// SEPARATOR for GROUP_CONCAT ("" if absent).
  std::string separator;
  std::vector<Expr> args;
  /// Pattern argument of kExists/kNotExists. shared_ptr keeps Expr
  /// copyable despite the recursive type.
  std::shared_ptr<Pattern> pattern;

  static Expr MakeTerm(Term t);
  static Expr MakeVar(const std::string& name);
  static Expr Call(std::string name, std::vector<Expr> args);
  static Expr Binary(ExprKind k, std::string op, Expr lhs, Expr rhs);

  bool is_variable() const {
    return kind == ExprKind::kTerm && term.is_variable();
  }

  /// Appends all variables occurring in the expression (including inside
  /// EXISTS patterns) to `out`.
  void CollectVariables(std::set<std::string>& out) const;
};

// ---------------------------------------------------------------------------
// Graph patterns.
// ---------------------------------------------------------------------------

/// A triple pattern or property-path pattern.
struct TriplePattern {
  Term subject;
  /// When false, `predicate` holds the predicate term (IRI or variable).
  bool has_path = false;
  Term predicate;
  PathExpr path;  ///< Valid iff has_path.
  Term object;

  static TriplePattern Make(Term s, Term p, Term o);
  static TriplePattern MakePath(Term s, PathExpr path, Term o);

  /// True iff the predicate position holds a variable (these queries have
  /// no meaningful canonical *graph*; Section 5 of the paper).
  bool has_variable_predicate() const {
    return !has_path && predicate.is_variable();
  }

  void CollectVariables(std::set<std::string>& out) const;
};

struct Query;  // forward declaration (subqueries)

enum class PatternKind {
  kGroup,      ///< Conjunction (And) of children, in syntactic order.
  kTriple,     ///< A single triple/path pattern.
  kFilter,     ///< FILTER constraint (scoped to the enclosing group).
  kUnion,      ///< Union of >= 2 children.
  kOptional,   ///< OPTIONAL { child } — binds to the preceding group part.
  kMinus,      ///< MINUS { child }.
  kGraph,      ///< GRAPH iv { child }.
  kService,    ///< SERVICE [SILENT] iv { child }.
  kBind,       ///< BIND(expr AS var).
  kValues,     ///< Inline data.
  kSubSelect,  ///< A nested SELECT query.
};

/// A node of a SPARQL graph-pattern tree. One fat value-type node keeps
/// the AST copyable and easy to traverse; queries are small in practice
/// (the paper's corpus: > 55% have one triple, max 229).
struct Pattern {
  PatternKind kind = PatternKind::kGroup;
  /// kTriple payload.
  TriplePattern triple;
  /// Children: group members, union branches, or the single body of
  /// optional/minus/graph/service.
  std::vector<Pattern> children;
  /// kFilter constraint or kBind source expression.
  Expr expr;
  /// kBind target variable.
  Term var;
  /// kGraph / kService: the IRI or variable `iv`.
  Term graph;
  bool silent = false;  ///< SERVICE SILENT.
  /// kValues payload.
  std::vector<Term> values_vars;
  std::vector<std::vector<std::optional<Term>>> values_rows;
  /// kSubSelect payload; shared_ptr keeps Pattern copyable.
  std::shared_ptr<Query> subquery;

  static Pattern Group(std::vector<Pattern> children);
  static Pattern Triple(TriplePattern tp);
  static Pattern Filter(Expr e);
  static Pattern Union(std::vector<Pattern> branches);
  static Pattern Optional(Pattern body);
  static Pattern Minus(Pattern body);
  static Pattern Graph(Term iv, Pattern body);

  /// Appends all variables in the pattern (not descending into
  /// subqueries' SELECT clauses, but into their bodies) to `out`.
  void CollectVariables(std::set<std::string>& out) const;

  /// Appends every triple pattern in this subtree (not descending into
  /// subqueries or EXISTS filters) to `out`.
  void CollectTriples(std::vector<const TriplePattern*>& out) const;

  /// In-scope variables per SPARQL 1.1 Section 18.2.1: variables visible
  /// to the enclosing projection (excludes MINUS bodies and variables
  /// only mentioned in FILTER constraints).
  void CollectInScopeVariables(std::set<std::string>& out) const;
};

// ---------------------------------------------------------------------------
// Queries.
// ---------------------------------------------------------------------------

/// The four SPARQL query forms (Section 3 of the paper).
enum class QueryForm { kSelect, kAsk, kConstruct, kDescribe };

/// One ORDER BY condition.
struct OrderCondition {
  bool descending = false;
  Expr expr;
};

/// One SELECT projection item: a plain variable or `(expr AS ?var)`.
struct SelectItem {
  Term var;
  std::optional<Expr> expr;
};

/// One GROUP BY condition: an expression, optionally bound `AS ?var`.
struct GroupCondition {
  Expr expr;
  std::optional<Term> as_var;
};

/// One FROM / FROM NAMED dataset clause.
struct DatasetClause {
  bool named = false;
  std::string iri;
};

/// A parsed SPARQL query: (query-type, pattern, solution-modifier) as in
/// Section 3 of the paper, plus the prologue.
struct Query {
  QueryForm form = QueryForm::kSelect;

  // Prologue.
  std::string base;
  std::vector<std::pair<std::string, std::string>> prefixes;

  // Projection (Select) / template (Construct) / targets (Describe).
  bool distinct = false;
  bool reduced = false;
  bool select_star = false;
  std::vector<SelectItem> select_items;
  std::vector<TriplePattern> construct_template;
  std::vector<Term> describe_targets;  ///< empty with describe_all for `*`.
  bool describe_all = false;

  std::vector<DatasetClause> dataset;

  /// Whether the query has a WHERE clause (Describe queries may not; the
  /// paper: 4.47% of the corpus has no body).
  bool has_body = false;
  Pattern where;  ///< Root group; valid iff has_body.

  // Solution modifiers.
  std::vector<GroupCondition> group_by;
  std::vector<Expr> having;
  std::vector<OrderCondition> order_by;
  std::optional<uint64_t> limit;
  std::optional<uint64_t> offset;

  /// Trailing VALUES clause, if any.
  std::optional<Pattern> trailing_values;

  /// All variables appearing in the body.
  std::set<std::string> BodyVariables() const;
};

}  // namespace sparqlog::sparql

#endif  // SPARQLOG_SPARQL_AST_H_
