#ifndef SPARQLOG_SPARQL_AST_H_
#define SPARQLOG_SPARQL_AST_H_

#include <cstdint>
#include <memory>
#include <memory_resource>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/term.h"

namespace sparqlog::sparql {

using rdf::Term;

/// AST node storage types. Every string and child vector in the AST is
/// allocator-aware: the parser's hot path constructs whole queries on an
/// epoch-reset arena (`util::ArenaResource`, zero heap allocations once
/// warm), while default-constructed nodes — tests, the query generator,
/// the fuzzer — land on the heap exactly as before.
///
/// Memory discipline (see DESIGN.md "Parser memory discipline"):
///  * Nodes composed into one tree must share one memory_resource; the
///    `explicit X(memory_resource*)` constructors plus the factory
///    functions (which inherit the resource of their arguments) keep
///    this true by construction.
///  * Moves steal storage and keep the source's resource.
///  * Copies always land on the default (heap) resource — copying an
///    arena-built AST yields an independent, arena-free deep copy.
using AstString = std::pmr::string;
template <typename T>
using AstVector = std::pmr::vector<T>;

// ---------------------------------------------------------------------------
// Property paths (SPARQL 1.1). A property path is a regular expression over
// the alphabet of IRIs (Section 3 of the paper).
// ---------------------------------------------------------------------------

enum class PathKind {
  kLink,        ///< A single IRI step `a`.
  kInverse,     ///< `^p` — traverse an edge in reverse.
  kNegated,     ///< `!(a|^b|...)` — any edge not in the set.
  kSeq,         ///< `p1/p2/...` — concatenation.
  kAlt,         ///< `p1|p2|...` — alternation.
  kZeroOrMore,  ///< `p*`.
  kOneOrMore,   ///< `p+`.
  kZeroOrOne,   ///< `p?`.
};

/// AST of a property path expression.
struct PathExpr {
  PathKind kind = PathKind::kLink;
  /// IRI for kLink nodes.
  AstString iri;
  /// Sub-expressions: 1 for unary kinds, >= 2 for kSeq/kAlt, and the
  /// (kLink/kInverse) members of a kNegated set.
  AstVector<PathExpr> children;

  PathExpr() = default;
  explicit PathExpr(std::pmr::memory_resource* mr) : iri(mr), children(mr) {}

  static PathExpr Link(std::string_view iri,
                       std::pmr::memory_resource* mr =
                           std::pmr::get_default_resource());
  static PathExpr Unary(PathKind k, PathExpr child);
  static PathExpr Nary(PathKind k, AstVector<PathExpr> children);

  /// True iff the path is a bare IRI (then the triple pattern it occurs in
  /// is an ordinary triple).
  bool IsSimpleLink() const { return kind == PathKind::kLink; }

  bool operator==(const PathExpr& o) const;

  /// Surface syntax, fully parenthesized where needed.
  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Expressions: filter constraints, projection expressions, HAVING, ORDER BY.
// ---------------------------------------------------------------------------

struct Pattern;  // forward declaration; Expr can hold EXISTS { Pattern }

enum class ExprKind {
  kTerm,        ///< A variable or RDF term.
  kOr,          ///< `a || b` (n-ary).
  kAnd,         ///< `a && b` (n-ary).
  kNot,         ///< `!a`.
  kCompare,     ///< `a OP b`, OP in {=, !=, <, >, <=, >=}.
  kIn,          ///< `a IN (b, c, ...)`.
  kNotIn,       ///< `a NOT IN (b, c, ...)`.
  kArith,       ///< `a OP b`, OP in {+, -, *, /}.
  kUnaryMinus,  ///< `-a`.
  kUnaryPlus,   ///< `+a`.
  kFunction,    ///< Builtin or extension function call `f(args...)`.
  kAggregate,   ///< COUNT/SUM/MIN/MAX/AVG/SAMPLE/GROUP_CONCAT.
  kExists,      ///< `EXISTS { P }`.
  kNotExists,   ///< `NOT EXISTS { P }`.
};

/// A SPARQL expression tree.
struct Expr {
  ExprKind kind = ExprKind::kTerm;
  /// For kTerm: the term.
  Term term;
  /// Operator symbol (kCompare/kArith) or (upper-cased) function or
  /// aggregate name (kFunction/kAggregate).
  AstString op;
  /// DISTINCT inside an aggregate, e.g. COUNT(DISTINCT ?x).
  bool distinct = false;
  /// COUNT(*).
  bool star = false;
  /// SEPARATOR for GROUP_CONCAT ("" if absent).
  AstString separator;
  AstVector<Expr> args;
  /// Pattern argument of kExists/kNotExists. shared_ptr keeps Expr
  /// copyable despite the recursive type; the copy path deep-copies it
  /// so no two Exprs ever share a payload.
  std::shared_ptr<Pattern> pattern;

  Expr() = default;
  explicit Expr(std::pmr::memory_resource* mr)
      : term(mr), op(mr), separator(mr), args(mr) {}
  /// Deep copy: clones the EXISTS pattern payload instead of aliasing
  /// it, so mutating a copied expression never edits the original.
  Expr(const Expr& o);
  Expr& operator=(const Expr& o);
  Expr(Expr&&) noexcept = default;
  Expr& operator=(Expr&&) = default;
  ~Expr() = default;

  static Expr MakeTerm(Term t);
  static Expr MakeVar(std::string_view name,
                      std::pmr::memory_resource* mr =
                          std::pmr::get_default_resource());
  static Expr Call(std::string_view name, AstVector<Expr> args);
  static Expr Binary(ExprKind k, std::string_view op, Expr lhs, Expr rhs);

  bool is_variable() const {
    return kind == ExprKind::kTerm && term.is_variable();
  }

  /// Appends all variables occurring in the expression (including inside
  /// EXISTS patterns) to `out`.
  void CollectVariables(std::set<std::string>& out) const;
};

// ---------------------------------------------------------------------------
// Graph patterns.
// ---------------------------------------------------------------------------

/// A triple pattern or property-path pattern.
struct TriplePattern {
  Term subject;
  /// When false, `predicate` holds the predicate term (IRI or variable).
  bool has_path = false;
  Term predicate;
  PathExpr path;  ///< Valid iff has_path.
  Term object;

  TriplePattern() = default;
  explicit TriplePattern(std::pmr::memory_resource* mr)
      : subject(mr), predicate(mr), path(mr), object(mr) {}

  static TriplePattern Make(Term s, Term p, Term o);
  static TriplePattern MakePath(Term s, PathExpr path, Term o);

  /// True iff the predicate position holds a variable (these queries have
  /// no meaningful canonical *graph*; Section 5 of the paper).
  bool has_variable_predicate() const {
    return !has_path && predicate.is_variable();
  }

  void CollectVariables(std::set<std::string>& out) const;
};

struct Query;  // forward declaration (subqueries)

enum class PatternKind {
  kGroup,      ///< Conjunction (And) of children, in syntactic order.
  kTriple,     ///< A single triple/path pattern.
  kFilter,     ///< FILTER constraint (scoped to the enclosing group).
  kUnion,      ///< Union of >= 2 children.
  kOptional,   ///< OPTIONAL { child } — binds to the preceding group part.
  kMinus,      ///< MINUS { child }.
  kGraph,      ///< GRAPH iv { child }.
  kService,    ///< SERVICE [SILENT] iv { child }.
  kBind,       ///< BIND(expr AS var).
  kValues,     ///< Inline data.
  kSubSelect,  ///< A nested SELECT query.
};

/// A node of a SPARQL graph-pattern tree. One fat value-type node keeps
/// the AST copyable and easy to traverse; queries are small in practice
/// (the paper's corpus: > 55% have one triple, max 229).
struct Pattern {
  PatternKind kind = PatternKind::kGroup;
  /// kTriple payload.
  TriplePattern triple;
  /// Children: group members, union branches, or the single body of
  /// optional/minus/graph/service.
  AstVector<Pattern> children;
  /// kFilter constraint or kBind source expression.
  Expr expr;
  /// kBind target variable.
  Term var;
  /// kGraph / kService: the IRI or variable `iv`.
  Term graph;
  bool silent = false;  ///< SERVICE SILENT.
  /// kValues payload.
  AstVector<Term> values_vars;
  AstVector<AstVector<std::optional<Term>>> values_rows;
  /// kSubSelect payload; shared_ptr keeps Pattern copyable. The copy
  /// path deep-copies it so no two Patterns ever share a subquery.
  std::shared_ptr<Query> subquery;

  Pattern() = default;
  explicit Pattern(std::pmr::memory_resource* mr)
      : triple(mr),
        children(mr),
        expr(mr),
        var(mr),
        graph(mr),
        values_vars(mr),
        values_rows(mr) {}
  /// Deep copy: clones the subquery payload instead of aliasing it, so
  /// mutating a copied pattern (e.g. the AST shrinker) never edits the
  /// original.
  Pattern(const Pattern& o);
  Pattern& operator=(const Pattern& o);
  Pattern(Pattern&&) noexcept = default;
  Pattern& operator=(Pattern&&) = default;
  ~Pattern() = default;

  static Pattern Group(AstVector<Pattern> children);
  static Pattern Triple(TriplePattern tp);
  static Pattern Filter(Expr e);
  static Pattern Union(AstVector<Pattern> branches);
  static Pattern Optional(Pattern body);
  static Pattern Minus(Pattern body);
  static Pattern Graph(Term iv, Pattern body);

  /// Appends all variables in the pattern (not descending into
  /// subqueries' SELECT clauses, but into their bodies) to `out`.
  void CollectVariables(std::set<std::string>& out) const;

  /// Appends every triple pattern in this subtree (not descending into
  /// subqueries or EXISTS filters) to `out`.
  void CollectTriples(std::vector<const TriplePattern*>& out) const;

  /// In-scope variables per SPARQL 1.1 Section 18.2.1: variables visible
  /// to the enclosing projection (excludes MINUS bodies and variables
  /// only mentioned in FILTER constraints).
  void CollectInScopeVariables(std::set<std::string>& out) const;
};

// ---------------------------------------------------------------------------
// Queries.
// ---------------------------------------------------------------------------

/// The four SPARQL query forms (Section 3 of the paper).
enum class QueryForm { kSelect, kAsk, kConstruct, kDescribe };

/// One ORDER BY condition.
struct OrderCondition {
  bool descending = false;
  Expr expr;

  OrderCondition() = default;
  explicit OrderCondition(std::pmr::memory_resource* mr) : expr(mr) {}
};

/// One SELECT projection item: a plain variable or `(expr AS ?var)`.
struct SelectItem {
  Term var;
  std::optional<Expr> expr;

  SelectItem() = default;
  explicit SelectItem(std::pmr::memory_resource* mr) : var(mr) {}
};

/// One GROUP BY condition: an expression, optionally bound `AS ?var`.
struct GroupCondition {
  Expr expr;
  std::optional<Term> as_var;

  GroupCondition() = default;
  explicit GroupCondition(std::pmr::memory_resource* mr) : expr(mr) {}
};

/// One FROM / FROM NAMED dataset clause.
struct DatasetClause {
  bool named = false;
  AstString iri;

  DatasetClause() = default;
  explicit DatasetClause(std::pmr::memory_resource* mr) : iri(mr) {}
};

/// A parsed SPARQL query: (query-type, pattern, solution-modifier) as in
/// Section 3 of the paper, plus the prologue.
struct Query {
  QueryForm form = QueryForm::kSelect;

  // Prologue.
  AstString base;
  AstVector<std::pair<AstString, AstString>> prefixes;

  // Projection (Select) / template (Construct) / targets (Describe).
  bool distinct = false;
  bool reduced = false;
  bool select_star = false;
  AstVector<SelectItem> select_items;
  AstVector<TriplePattern> construct_template;
  AstVector<Term> describe_targets;  ///< empty with describe_all for `*`.
  bool describe_all = false;

  AstVector<DatasetClause> dataset;

  /// Whether the query has a WHERE clause (Describe queries may not; the
  /// paper: 4.47% of the corpus has no body).
  bool has_body = false;
  Pattern where;  ///< Root group; valid iff has_body.

  // Solution modifiers.
  AstVector<GroupCondition> group_by;
  AstVector<Expr> having;
  AstVector<OrderCondition> order_by;
  std::optional<uint64_t> limit;
  std::optional<uint64_t> offset;

  /// Trailing VALUES clause, if any.
  std::optional<Pattern> trailing_values;

  Query() = default;
  explicit Query(std::pmr::memory_resource* mr)
      : base(mr),
        prefixes(mr),
        select_items(mr),
        construct_template(mr),
        describe_targets(mr),
        dataset(mr),
        where(mr),
        group_by(mr),
        having(mr),
        order_by(mr) {}

  /// All variables appearing in the body.
  std::set<std::string> BodyVariables() const;
};

}  // namespace sparqlog::sparql

#endif  // SPARQLOG_SPARQL_AST_H_
