#ifndef SPARQLOG_SPARQL_PARSER_H_
#define SPARQLOG_SPARQL_PARSER_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sparql/ast.h"
#include "sparql/lexer.h"
#include "sparql/token.h"
#include "util/arena.h"
#include "util/result.h"

namespace sparqlog::sparql {

/// Parser configuration.
struct ParserOptions {
  /// Prefix table with a transparent comparator so the parser can look
  /// up `string_view` prefixes sliced out of tokens without allocating.
  using PrefixMap = std::map<std::string, std::string, std::less<>>;

  /// Prefixes assumed to be pre-declared by the endpoint (most public
  /// endpoints, e.g. DBpedia's Virtuoso, inject a default set). Queries in
  /// logs routinely rely on them.
  PrefixMap default_prefixes = DefaultPrefixes();

  /// When true, an undeclared prefix `foo:bar` is expanded to the
  /// placeholder IRI `urn:prefix:foo:bar` instead of failing the parse.
  bool allow_unknown_prefixes = false;

  /// Maximum nesting depth of the recursive-descent grammar (group
  /// graph patterns, property-path groups, parenthesized/EXISTS
  /// expressions combined). A log line like "ASK {{{{...}}}}" otherwise
  /// recurses once per brace and overruns the C++ stack — a crash no
  /// try/catch can contain. Exceeding the cap is a parse error
  /// (kInvalidArgument), so the line lands in the malformed bucket like
  /// any other unparseable entry. Generous for real queries: the
  /// corpus' deepest observed nesting is far below 100.
  int max_recursion_depth = 128;

  /// The built-in default prefix set (rdf, rdfs, owl, xsd, foaf, dc, ...).
  static PrefixMap DefaultPrefixes();
};

/// Reusable per-worker parse state: the arena that owns all AST node
/// storage, the recycled token buffer, and the prefixed-name expansion
/// cache. One warm scratch makes `Parser::Parse(text, scratch)` run
/// with zero heap allocations on typical log lines.
///
/// Lifetime contract (see DESIGN.md "Parser memory discipline"): every
/// `Query` returned by a scratch-parse lives on `arena` and dies at
/// `Reset()`. Reset is explicit — a pipeline worker parses a whole
/// chunk into one scratch, hands the batches downstream, and resets
/// once nothing references the chunk's ASTs. The pname cache is *not*
/// reset (its cross-line hits are the point); it flushes itself on its
/// own storage budget. A scratch must only be used with parsers whose
/// options are identical, or cached expansions could leak between
/// configurations.
struct ParserScratch {
  util::ArenaResource arena;
  TokenStream tokens;
  util::StringInterner pnames;

  /// Invalidates every Query previously parsed into this scratch.
  void Reset() { arena.Reset(); }
};

/// Recursive-descent parser for SPARQL 1.1 queries.
///
/// Covers the query subset of the SPARQL 1.1 grammar: the four query
/// forms, dataset clauses, group graph patterns with triples blocks
/// (including `;`/`,` abbreviations, blank-node property lists, and RDF
/// collections), FILTER/OPTIONAL/UNION/MINUS/GRAPH/SERVICE/BIND/VALUES,
/// subqueries, property paths, expressions with aggregates, and all
/// solution modifiers. Update operations are rejected with
/// `StatusCode::kUnsupported` (the paper's log-cleaning step drops them).
class Parser {
 public:
  explicit Parser(ParserOptions options = ParserOptions());

  /// Parses a complete query onto the default heap resource. Returns
  /// InvalidArgument on syntax errors, Unsupported for SPARQL Update
  /// requests. This path stays the allocation-per-node reference
  /// implementation (the fuzz harness diffs it against the scratch
  /// path below).
  util::Result<Query> Parse(std::string_view text) const;

  /// Arena-pooled parse: the returned Query's entire node storage lives
  /// on `scratch.arena` and is valid until `scratch.Reset()`. Copying
  /// the Query (plain copy construction) detaches it onto the heap.
  util::Result<Query> Parse(std::string_view text,
                            ParserScratch& scratch) const;

  /// True iff `text` parses (the paper's "Valid" criterion, standing in
  /// for Apache Jena 3.0.1).
  bool IsValid(std::string_view text) const;

 private:
  ParserOptions options_;
};

/// Convenience one-shot parse with default options.
util::Result<Query> ParseQuery(std::string_view text);

}  // namespace sparqlog::sparql

#endif  // SPARQLOG_SPARQL_PARSER_H_
