#ifndef SPARQLOG_SPARQL_PARSER_H_
#define SPARQLOG_SPARQL_PARSER_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sparql/ast.h"
#include "sparql/token.h"
#include "util/result.h"

namespace sparqlog::sparql {

/// Parser configuration.
struct ParserOptions {
  /// Prefix table with a transparent comparator so the parser can look
  /// up `string_view` prefixes sliced out of tokens without allocating.
  using PrefixMap = std::map<std::string, std::string, std::less<>>;

  /// Prefixes assumed to be pre-declared by the endpoint (most public
  /// endpoints, e.g. DBpedia's Virtuoso, inject a default set). Queries in
  /// logs routinely rely on them.
  PrefixMap default_prefixes = DefaultPrefixes();

  /// When true, an undeclared prefix `foo:bar` is expanded to the
  /// placeholder IRI `urn:prefix:foo:bar` instead of failing the parse.
  bool allow_unknown_prefixes = false;

  /// The built-in default prefix set (rdf, rdfs, owl, xsd, foaf, dc, ...).
  static PrefixMap DefaultPrefixes();
};

/// Recursive-descent parser for SPARQL 1.1 queries.
///
/// Covers the query subset of the SPARQL 1.1 grammar: the four query
/// forms, dataset clauses, group graph patterns with triples blocks
/// (including `;`/`,` abbreviations, blank-node property lists, and RDF
/// collections), FILTER/OPTIONAL/UNION/MINUS/GRAPH/SERVICE/BIND/VALUES,
/// subqueries, property paths, expressions with aggregates, and all
/// solution modifiers. Update operations are rejected with
/// `StatusCode::kUnsupported` (the paper's log-cleaning step drops them).
class Parser {
 public:
  explicit Parser(ParserOptions options = ParserOptions());

  /// Parses a complete query. Returns InvalidArgument on syntax errors,
  /// Unsupported for SPARQL Update requests.
  util::Result<Query> Parse(std::string_view text) const;

  /// True iff `text` parses (the paper's "Valid" criterion, standing in
  /// for Apache Jena 3.0.1).
  bool IsValid(std::string_view text) const;

 private:
  ParserOptions options_;
};

/// Convenience one-shot parse with default options.
util::Result<Query> ParseQuery(std::string_view text);

}  // namespace sparqlog::sparql

#endif  // SPARQLOG_SPARQL_PARSER_H_
