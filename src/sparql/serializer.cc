#include "sparql/serializer.h"

#include <string>

namespace sparqlog::sparql {

namespace {

std::string Indent(int n) { return std::string(static_cast<size_t>(n) * 2, ' '); }

void AppendExpr(const Expr& e, std::string& out);

void AppendArgsInfix(const Expr& e, const char* op, std::string& out) {
  out += "(";
  for (size_t i = 0; i < e.args.size(); ++i) {
    if (i > 0) {
      out += " ";
      out += op;
      out += " ";
    }
    AppendExpr(e.args[i], out);
  }
  out += ")";
}

void AppendExpr(const Expr& e, std::string& out) {
  switch (e.kind) {
    case ExprKind::kTerm:
      out += e.term.ToString();
      return;
    case ExprKind::kOr:
      AppendArgsInfix(e, "||", out);
      return;
    case ExprKind::kAnd:
      AppendArgsInfix(e, "&&", out);
      return;
    case ExprKind::kNot:
      out += "(! ";
      AppendExpr(e.args[0], out);
      out += ")";
      return;
    case ExprKind::kCompare:
    case ExprKind::kArith:
      AppendArgsInfix(e, e.op.c_str(), out);
      return;
    case ExprKind::kIn:
    case ExprKind::kNotIn: {
      out += "(";
      AppendExpr(e.args[0], out);
      out += e.kind == ExprKind::kIn ? " IN (" : " NOT IN (";
      for (size_t i = 1; i < e.args.size(); ++i) {
        if (i > 1) out += ", ";
        AppendExpr(e.args[i], out);
      }
      out += "))";
      return;
    }
    case ExprKind::kUnaryMinus:
      out += "(- ";
      AppendExpr(e.args[0], out);
      out += ")";
      return;
    case ExprKind::kUnaryPlus:
      out += "(+ ";
      AppendExpr(e.args[0], out);
      out += ")";
      return;
    case ExprKind::kFunction: {
      bool iri_function = e.op.find(':') != std::string::npos;
      if (iri_function) {
        out += "<" + e.op + ">";
      } else {
        out += e.op;
      }
      out += "(";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        AppendExpr(e.args[i], out);
      }
      out += ")";
      return;
    }
    case ExprKind::kAggregate: {
      out += e.op + "(";
      if (e.distinct) out += "DISTINCT ";
      if (e.star) {
        out += "*";
      } else if (!e.args.empty()) {
        AppendExpr(e.args[0], out);
      }
      if (!e.separator.empty()) {
        out += "; SEPARATOR=\"" + e.separator + "\"";
      }
      out += ")";
      return;
    }
    case ExprKind::kExists:
    case ExprKind::kNotExists:
      out += e.kind == ExprKind::kExists ? "EXISTS " : "NOT EXISTS ";
      if (e.pattern) out += SerializePattern(*e.pattern, 0);
      return;
  }
}

void AppendSolutionModifier(const Query& q, std::string& out);

void AppendPattern(const Pattern& p, int indent, std::string& out) {
  switch (p.kind) {
    case PatternKind::kGroup: {
      out += "{\n";
      for (const Pattern& c : p.children) {
        AppendPattern(c, indent + 1, out);
      }
      out += Indent(indent) + "}";
      return;
    }
    case PatternKind::kTriple:
      out += Indent(indent) + SerializeTriple(p.triple) + " .\n";
      return;
    case PatternKind::kFilter:
      out += Indent(indent) + "FILTER " + SerializeExpr(p.expr) + "\n";
      return;
    case PatternKind::kUnion: {
      out += Indent(indent);
      for (size_t i = 0; i < p.children.size(); ++i) {
        if (i > 0) out += " UNION ";
        AppendPattern(p.children[i], indent, out);
      }
      out += "\n";
      return;
    }
    case PatternKind::kOptional:
      out += Indent(indent) + "OPTIONAL ";
      AppendPattern(p.children[0], indent, out);
      out += "\n";
      return;
    case PatternKind::kMinus:
      out += Indent(indent) + "MINUS ";
      AppendPattern(p.children[0], indent, out);
      out += "\n";
      return;
    case PatternKind::kGraph:
      out += Indent(indent) + "GRAPH " + p.graph.ToString() + " ";
      AppendPattern(p.children[0], indent, out);
      out += "\n";
      return;
    case PatternKind::kService:
      out += Indent(indent) + "SERVICE " +
             std::string(p.silent ? "SILENT " : "") + p.graph.ToString() +
             " ";
      AppendPattern(p.children[0], indent, out);
      out += "\n";
      return;
    case PatternKind::kBind:
      out += Indent(indent) + "BIND(" + SerializeExpr(p.expr) + " AS " +
             p.var.ToString() + ")\n";
      return;
    case PatternKind::kValues: {
      out += Indent(indent) + "VALUES (";
      for (size_t i = 0; i < p.values_vars.size(); ++i) {
        if (i > 0) out += " ";
        out += p.values_vars[i].ToString();
      }
      out += ") {\n";
      for (const auto& row : p.values_rows) {
        out += Indent(indent + 1) + "(";
        for (size_t i = 0; i < row.size(); ++i) {
          if (i > 0) out += " ";
          out += row[i].has_value() ? row[i]->ToString() : "UNDEF";
        }
        out += ")\n";
      }
      out += Indent(indent) + "}\n";
      return;
    }
    case PatternKind::kSubSelect: {
      out += Indent(indent) + "{\n" + Indent(indent + 1);
      if (p.subquery) {
        // Serialize the subquery without a prologue.
        const Query& sub = *p.subquery;
        out += "SELECT ";
        if (sub.distinct) out += "DISTINCT ";
        if (sub.reduced) out += "REDUCED ";
        if (sub.select_star) {
          out += "*";
        } else {
          for (size_t i = 0; i < sub.select_items.size(); ++i) {
            if (i > 0) out += " ";
            const SelectItem& item = sub.select_items[i];
            if (item.expr.has_value()) {
              out += "(" + SerializeExpr(*item.expr) + " AS " +
                     item.var.ToString() + ")";
            } else {
              out += item.var.ToString();
            }
          }
        }
        out += " WHERE ";
        if (sub.has_body) AppendPattern(sub.where, indent + 1, out);
        AppendSolutionModifier(sub, out);
      }
      out += "\n" + Indent(indent) + "}\n";
      return;
    }
  }
}

void AppendSolutionModifier(const Query& q, std::string& out) {
  if (!q.group_by.empty()) {
    out += "\nGROUP BY";
    for (const GroupCondition& gc : q.group_by) {
      if (gc.as_var.has_value()) {
        out += " (" + SerializeExpr(gc.expr) + " AS " +
               gc.as_var->ToString() + ")";
      } else if (gc.expr.is_variable()) {
        out += " " + gc.expr.term.ToString();
      } else {
        out += " (" + SerializeExpr(gc.expr) + ")";
      }
    }
  }
  if (!q.having.empty()) {
    out += "\nHAVING";
    for (const Expr& e : q.having) {
      std::string s = SerializeExpr(e);
      if (s.empty() || s[0] != '(') s = "(" + s + ")";
      out += " " + s;
    }
  }
  if (!q.order_by.empty()) {
    out += "\nORDER BY";
    for (const OrderCondition& oc : q.order_by) {
      if (oc.descending) {
        out += " DESC(" + SerializeExpr(oc.expr) + ")";
      } else if (oc.expr.is_variable()) {
        out += " " + oc.expr.term.ToString();
      } else {
        out += " ASC(" + SerializeExpr(oc.expr) + ")";
      }
    }
  }
  if (q.limit.has_value()) out += "\nLIMIT " + std::to_string(*q.limit);
  if (q.offset.has_value()) out += "\nOFFSET " + std::to_string(*q.offset);
}

}  // namespace

std::string SerializeTriple(const TriplePattern& tp) {
  std::string out = tp.subject.ToString() + " ";
  if (tp.has_path) {
    out += tp.path.ToString();
  } else {
    out += tp.predicate.ToString();
  }
  out += " " + tp.object.ToString();
  return out;
}

std::string SerializeExpr(const Expr& e) {
  std::string out;
  AppendExpr(e, out);
  return out;
}

std::string SerializePattern(const Pattern& p, int indent) {
  std::string out;
  AppendPattern(p, indent, out);
  return out;
}

std::string Serialize(const Query& q) {
  std::string out;
  switch (q.form) {
    case QueryForm::kSelect: {
      out += "SELECT ";
      if (q.distinct) out += "DISTINCT ";
      if (q.reduced) out += "REDUCED ";
      if (q.select_star) {
        out += "*";
      } else {
        for (size_t i = 0; i < q.select_items.size(); ++i) {
          if (i > 0) out += " ";
          const SelectItem& item = q.select_items[i];
          if (item.expr.has_value()) {
            out += "(" + SerializeExpr(*item.expr) + " AS " +
                   item.var.ToString() + ")";
          } else {
            out += item.var.ToString();
          }
        }
      }
      break;
    }
    case QueryForm::kAsk:
      out += "ASK";
      break;
    case QueryForm::kConstruct: {
      out += "CONSTRUCT {\n";
      for (const TriplePattern& tp : q.construct_template) {
        out += "  " + SerializeTriple(tp) + " .\n";
      }
      out += "}";
      break;
    }
    case QueryForm::kDescribe: {
      out += "DESCRIBE";
      if (q.describe_all) {
        out += " *";
      } else {
        for (const Term& t : q.describe_targets) out += " " + t.ToString();
      }
      break;
    }
  }
  for (const DatasetClause& dc : q.dataset) {
    out += std::string("\nFROM ") + (dc.named ? "NAMED " : "") + "<" +
           dc.iri + ">";
  }
  if (q.has_body) {
    out += q.form == QueryForm::kAsk ? " " : "\nWHERE ";
    AppendPattern(q.where, 0, out);
  }
  AppendSolutionModifier(q, out);
  if (q.trailing_values.has_value()) {
    out += "\n";
    std::string values = SerializePattern(*q.trailing_values, 0);
    out += values;
  }
  return out;
}

}  // namespace sparqlog::sparql
