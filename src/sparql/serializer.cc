#include "sparql/serializer.h"

#include <charconv>
#include <string>

namespace sparqlog::sparql {

namespace {

// Precedence for printing paths: alt < seq < unary/primary. Mirrors
// PathExpr::ToString (ast.cc); the property tests assert the two agree.
int PathPrec(PathKind k) {
  switch (k) {
    case PathKind::kAlt: return 0;
    case PathKind::kSeq: return 1;
    default: return 2;
  }
}

/// True iff a kFunction op can be rendered as a bare `NAME(args)` call
/// and survive a reparse unchanged: it must lex as one identifier,
/// already be in the parser's canonical (upper) case, and not collide
/// with a name the expression grammar routes elsewhere. Everything else
/// — extension IRIs, but also colon-free relative IRIs like `<abc>` or
/// the empty `<>` (fuzzer-found) — uses the `<iri>(args)` form.
bool BareFunctionName(std::string_view op) {
  if (op.empty()) return false;
  char first = op[0];
  if (!((first >= 'A' && first <= 'Z') || first == '_')) return false;
  for (char c : op) {
    bool ok = (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_' ||
              c == '-';
    if (!ok) return false;  // lower case, ':', '/', non-ASCII, ...
  }
  // Parsed specially, never as a plain function call. DISTINCT is here
  // because argument lists and aggregates consume a leading DISTINCT as
  // the modifier keyword: SUM(DISTINCT(?x)) reparses as SUM(DISTINCT ?x).
  static constexpr std::string_view kReserved[] = {
      "TRUE", "FALSE", "EXISTS", "NOT",    "COUNT",        "SUM",
      "MIN",  "MAX",   "AVG",    "SAMPLE", "GROUP_CONCAT", "DISTINCT"};
  for (std::string_view r : kReserved) {
    if (op == r) return false;
  }
  return true;
}

/// True iff serializing `e` emits a leading '(' — the kinds rendered
/// through the infix/unary "(...)" forms. Lets the HAVING writer decide
/// whether to add wrapping parentheses without materializing the
/// expression first (the old code inspected the string's first byte).
bool StartsWithParen(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kTerm:
    case ExprKind::kFunction:
    case ExprKind::kAggregate:
    case ExprKind::kExists:
    case ExprKind::kNotExists:
      return false;
    default:
      return true;
  }
}

/// Streams the canonical form of an AST into a sink. Templated on the
/// concrete sink type so the hot instantiations (StringSink,
/// HashingSink — both final) devirtualize every Write; the `Sink`
/// instantiation serves arbitrary external sinks.
template <typename S>
class Writer {
 public:
  explicit Writer(S& out) : out_(out) {}

  void WriteQuery(const Query& q) {
    switch (q.form) {
      case QueryForm::kSelect:
        WriteSelectClause(q);
        break;
      case QueryForm::kAsk:
        Put("ASK");
        break;
      case QueryForm::kConstruct: {
        Put("CONSTRUCT {\n");
        for (const TriplePattern& tp : q.construct_template) {
          Put("  ");
          WriteTriple(tp);
          Put(" .\n");
        }
        Put("}");
        break;
      }
      case QueryForm::kDescribe: {
        Put("DESCRIBE");
        if (q.describe_all) {
          Put(" *");
        } else {
          for (const Term& t : q.describe_targets) {
            Put(" ");
            WriteTerm(t);
          }
        }
        break;
      }
    }
    for (const DatasetClause& dc : q.dataset) {
      Put("\nFROM ");
      if (dc.named) Put("NAMED ");
      Put("<");
      Put(dc.iri);
      Put(">");
    }
    if (q.has_body) {
      Put(q.form == QueryForm::kAsk ? " " : "\nWHERE ");
      WritePattern(q.where, 0);
    }
    WriteSolutionModifier(q);
    if (q.trailing_values.has_value()) {
      Put("\n");
      WritePattern(*q.trailing_values, 0);
    }
  }

  void WritePattern(const Pattern& p, int indent) {
    switch (p.kind) {
      case PatternKind::kGroup: {
        Put("{\n");
        for (const Pattern& c : p.children) {
          WritePattern(c, indent + 1);
        }
        PutIndent(indent);
        Put("}");
        return;
      }
      case PatternKind::kTriple:
        PutIndent(indent);
        WriteTriple(p.triple);
        Put(" .\n");
        return;
      case PatternKind::kFilter:
        PutIndent(indent);
        Put("FILTER ");
        WriteExpr(p.expr);
        Put("\n");
        return;
      case PatternKind::kUnion: {
        PutIndent(indent);
        for (size_t i = 0; i < p.children.size(); ++i) {
          if (i > 0) Put(" UNION ");
          WritePattern(p.children[i], indent);
        }
        Put("\n");
        return;
      }
      case PatternKind::kOptional:
        PutIndent(indent);
        Put("OPTIONAL ");
        WritePattern(p.children[0], indent);
        Put("\n");
        return;
      case PatternKind::kMinus:
        PutIndent(indent);
        Put("MINUS ");
        WritePattern(p.children[0], indent);
        Put("\n");
        return;
      case PatternKind::kGraph:
        PutIndent(indent);
        Put("GRAPH ");
        WriteTerm(p.graph);
        Put(" ");
        WritePattern(p.children[0], indent);
        Put("\n");
        return;
      case PatternKind::kService:
        PutIndent(indent);
        Put("SERVICE ");
        if (p.silent) Put("SILENT ");
        WriteTerm(p.graph);
        Put(" ");
        WritePattern(p.children[0], indent);
        Put("\n");
        return;
      case PatternKind::kBind:
        PutIndent(indent);
        Put("BIND(");
        WriteExpr(p.expr);
        Put(" AS ");
        WriteTerm(p.var);
        Put(")\n");
        return;
      case PatternKind::kValues: {
        PutIndent(indent);
        Put("VALUES (");
        for (size_t i = 0; i < p.values_vars.size(); ++i) {
          if (i > 0) Put(" ");
          WriteTerm(p.values_vars[i]);
        }
        Put(") {\n");
        for (const auto& row : p.values_rows) {
          PutIndent(indent + 1);
          Put("(");
          for (size_t i = 0; i < row.size(); ++i) {
            if (i > 0) Put(" ");
            if (row[i].has_value()) {
              WriteTerm(*row[i]);
            } else {
              Put("UNDEF");
            }
          }
          Put(")\n");
        }
        PutIndent(indent);
        Put("}\n");
        return;
      }
      case PatternKind::kSubSelect: {
        PutIndent(indent);
        Put("{\n");
        PutIndent(indent + 1);
        if (p.subquery) {
          // Serialize the subquery without a prologue.
          const Query& sub = *p.subquery;
          WriteSelectClause(sub);
          Put(" WHERE ");
          if (sub.has_body) WritePattern(sub.where, indent + 1);
          WriteSolutionModifier(sub);
        }
        Put("\n");
        PutIndent(indent);
        Put("}\n");
        return;
      }
    }
  }

  void WriteExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kTerm:
        WriteTerm(e.term);
        return;
      case ExprKind::kOr:
        WriteArgsInfix(e, "||");
        return;
      case ExprKind::kAnd:
        WriteArgsInfix(e, "&&");
        return;
      case ExprKind::kNot:
        Put("(! ");
        WriteExpr(e.args[0]);
        Put(")");
        return;
      case ExprKind::kCompare:
      case ExprKind::kArith:
        WriteArgsInfix(e, e.op);
        return;
      case ExprKind::kIn:
      case ExprKind::kNotIn: {
        Put("(");
        WriteExpr(e.args[0]);
        Put(e.kind == ExprKind::kIn ? " IN (" : " NOT IN (");
        for (size_t i = 1; i < e.args.size(); ++i) {
          if (i > 1) Put(", ");
          WriteExpr(e.args[i]);
        }
        Put("))");
        return;
      }
      case ExprKind::kUnaryMinus:
        Put("(- ");
        WriteExpr(e.args[0]);
        Put(")");
        return;
      case ExprKind::kUnaryPlus:
        Put("(+ ");
        WriteExpr(e.args[0]);
        Put(")");
        return;
      case ExprKind::kFunction: {
        if (BareFunctionName(e.op)) {
          Put(e.op);
        } else {
          Put("<");
          Put(e.op);
          Put(">");
        }
        Put("(");
        for (size_t i = 0; i < e.args.size(); ++i) {
          if (i > 0) Put(", ");
          WriteExpr(e.args[i]);
        }
        Put(")");
        return;
      }
      case ExprKind::kAggregate: {
        Put(e.op);
        Put("(");
        if (e.distinct) Put("DISTINCT ");
        if (e.star) {
          Put("*");
        } else if (!e.args.empty()) {
          WriteExpr(e.args[0]);
        }
        if (!e.separator.empty()) {
          // Escaped like any literal body: a separator containing a
          // quote or newline must still reparse (fuzzer-found).
          Put("; SEPARATOR=\"");
          PutEscaped(e.separator);
          Put("\"");
        }
        Put(")");
        return;
      }
      case ExprKind::kExists:
      case ExprKind::kNotExists:
        Put(e.kind == ExprKind::kExists ? "EXISTS " : "NOT EXISTS ");
        if (e.pattern) WritePattern(*e.pattern, 0);
        return;
    }
  }

  void WriteTriple(const TriplePattern& tp) {
    WriteTerm(tp.subject);
    Put(" ");
    if (tp.has_path) {
      WritePath(tp.path);
    } else {
      WriteTerm(tp.predicate);
    }
    Put(" ");
    WriteTerm(tp.object);
  }

 private:
  void Put(std::string_view s) { out_.Write(s); }

  void PutIndent(int n) {
    static constexpr std::string_view kSpaces = "                ";
    size_t want = static_cast<size_t>(n) * 2;
    while (want > 0) {
      size_t take = want < kSpaces.size() ? want : kSpaces.size();
      Put(kSpaces.substr(0, take));
      want -= take;
    }
  }

  void PutNumber(uint64_t v) {
    char buf[20];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    (void)ec;
    Put(std::string_view(buf, static_cast<size_t>(ptr - buf)));
  }

  /// Literal body with SPARQL escapes, streamed as runs between escape
  /// points (mirrors rdf::Term::ToString's EscapeLiteral byte for byte).
  void PutEscaped(std::string_view s) {
    size_t start = 0;
    for (size_t i = 0; i < s.size(); ++i) {
      std::string_view rep;
      switch (s[i]) {
        case '"': rep = "\\\""; break;
        case '\\': rep = "\\\\"; break;
        case '\n': rep = "\\n"; break;
        case '\r': rep = "\\r"; break;
        case '\t': rep = "\\t"; break;
        default: continue;
      }
      if (i > start) Put(s.substr(start, i - start));
      Put(rep);
      start = i + 1;
    }
    if (start < s.size()) Put(s.substr(start));
  }

  void WriteTerm(const Term& t) {
    switch (t.kind) {
      case rdf::TermKind::kIri:
        Put("<");
        Put(t.value);
        Put(">");
        return;
      case rdf::TermKind::kLiteral:
        Put("\"");
        PutEscaped(t.value);
        Put("\"");
        if (!t.lang.empty()) {
          Put("@");
          Put(t.lang);
        } else if (!t.datatype.empty()) {
          Put("^^<");
          Put(t.datatype);
          Put(">");
        }
        return;
      case rdf::TermKind::kBlank:
        Put("_:");
        Put(t.value);
        return;
      case rdf::TermKind::kVariable:
        Put("?");
        Put(t.value);
        return;
    }
  }

  void WritePathChild(const PathExpr& parent, const PathExpr& child) {
    bool parent_unary = parent.kind == PathKind::kZeroOrMore ||
                        parent.kind == PathKind::kOneOrMore ||
                        parent.kind == PathKind::kZeroOrOne ||
                        parent.kind == PathKind::kInverse;
    // Unary path operators apply to a PathPrimary (a link or a negated
    // set); anything else must be bracketed. In particular `(^a)*` must
    // not print as `^a*`, which parses as `^(a*)`.
    bool child_primary =
        child.kind == PathKind::kLink || child.kind == PathKind::kNegated;
    bool paren = PathPrec(child.kind) < PathPrec(parent.kind) ||
                 (parent_unary && !child_primary);
    if (paren) Put("(");
    WritePath(child);
    if (paren) Put(")");
  }

  void WritePath(const PathExpr& p) {
    switch (p.kind) {
      case PathKind::kLink:
        Put("<");
        Put(p.iri);
        Put(">");
        return;
      case PathKind::kInverse:
        Put("^");
        WritePathChild(p, p.children[0]);
        return;
      case PathKind::kNegated: {
        Put("!(");
        for (size_t i = 0; i < p.children.size(); ++i) {
          if (i > 0) Put("|");
          WritePath(p.children[i]);
        }
        Put(")");
        return;
      }
      case PathKind::kSeq:
      case PathKind::kAlt: {
        std::string_view sep = p.kind == PathKind::kSeq ? "/" : "|";
        for (size_t i = 0; i < p.children.size(); ++i) {
          if (i > 0) Put(sep);
          WritePathChild(p, p.children[i]);
        }
        return;
      }
      case PathKind::kZeroOrMore:
        WritePathChild(p, p.children[0]);
        Put("*");
        return;
      case PathKind::kOneOrMore:
        WritePathChild(p, p.children[0]);
        Put("+");
        return;
      case PathKind::kZeroOrOne:
        WritePathChild(p, p.children[0]);
        Put("?");
        return;
    }
  }

  void WriteSelectClause(const Query& q) {
    Put("SELECT ");
    if (q.distinct) Put("DISTINCT ");
    if (q.reduced) Put("REDUCED ");
    if (q.select_star) {
      Put("*");
      return;
    }
    for (size_t i = 0; i < q.select_items.size(); ++i) {
      if (i > 0) Put(" ");
      const SelectItem& item = q.select_items[i];
      if (item.expr.has_value()) {
        Put("(");
        WriteExpr(*item.expr);
        Put(" AS ");
        WriteTerm(item.var);
        Put(")");
      } else {
        WriteTerm(item.var);
      }
    }
  }

  void WriteArgsInfix(const Expr& e, std::string_view op) {
    Put("(");
    for (size_t i = 0; i < e.args.size(); ++i) {
      if (i > 0) {
        Put(" ");
        Put(op);
        Put(" ");
      }
      WriteExpr(e.args[i]);
    }
    Put(")");
  }

  void WriteSolutionModifier(const Query& q) {
    if (!q.group_by.empty()) {
      Put("\nGROUP BY");
      for (const GroupCondition& gc : q.group_by) {
        if (gc.as_var.has_value()) {
          Put(" (");
          WriteExpr(gc.expr);
          Put(" AS ");
          WriteTerm(*gc.as_var);
          Put(")");
        } else if (gc.expr.is_variable()) {
          Put(" ");
          WriteTerm(gc.expr.term);
        } else {
          Put(" (");
          WriteExpr(gc.expr);
          Put(")");
        }
      }
    }
    if (!q.having.empty()) {
      Put("\nHAVING");
      for (const Expr& e : q.having) {
        Put(" ");
        bool wrap = !StartsWithParen(e);
        if (wrap) Put("(");
        WriteExpr(e);
        if (wrap) Put(")");
      }
    }
    if (!q.order_by.empty()) {
      Put("\nORDER BY");
      for (const OrderCondition& oc : q.order_by) {
        if (oc.descending) {
          Put(" DESC(");
          WriteExpr(oc.expr);
          Put(")");
        } else if (oc.expr.is_variable()) {
          Put(" ");
          WriteTerm(oc.expr.term);
        } else {
          Put(" ASC(");
          WriteExpr(oc.expr);
          Put(")");
        }
      }
    }
    if (q.limit.has_value()) {
      Put("\nLIMIT ");
      PutNumber(*q.limit);
    }
    if (q.offset.has_value()) {
      Put("\nOFFSET ");
      PutNumber(*q.offset);
    }
  }

  S& out_;
};

}  // namespace

std::string Serialize(const Query& q) {
  StringSink sink;
  Writer<StringSink> w(sink);
  w.WriteQuery(q);
  return std::move(sink).str();
}

uint64_t CanonicalHash(const Query& q) {
  HashingSink sink;
  Writer<HashingSink> w(sink);
  w.WriteQuery(q);
  return sink.hash();
}

void SerializeTo(const Query& q, Sink& sink) {
  Writer<Sink> w(sink);
  w.WriteQuery(q);
}

std::string SerializePattern(const Pattern& p, int indent) {
  StringSink sink;
  Writer<StringSink> w(sink);
  w.WritePattern(p, indent);
  return std::move(sink).str();
}

std::string SerializeExpr(const Expr& e) {
  StringSink sink;
  Writer<StringSink> w(sink);
  w.WriteExpr(e);
  return std::move(sink).str();
}

std::string SerializeTriple(const TriplePattern& tp) {
  StringSink sink;
  Writer<StringSink> w(sink);
  w.WriteTriple(tp);
  return std::move(sink).str();
}

}  // namespace sparqlog::sparql
