#ifndef SPARQLOG_STORE_STORE_H_
#define SPARQLOG_STORE_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace sparqlog::store {

using rdf::EncodedTriple;
using rdf::TermId;

/// An in-memory, dictionary-encoded RDF triple store with the three
/// standard access paths (SPO, POS, OSP sorted vectors). This is the
/// shared substrate under both query engines of the Section 5.1
/// experiment (one store, two execution strategies).
class TripleStore {
 public:
  TripleStore() = default;

  /// Adds a triple by term strings (interned into the dictionary).
  void Add(const std::string& s, const std::string& p, const std::string& o);
  /// Adds an already-encoded triple.
  void Add(EncodedTriple t);

  /// Sorts the indexes; must be called after the last Add and before the
  /// first lookup. Idempotent. Removes duplicates.
  void Build();

  size_t size() const { return spo_.size(); }
  rdf::Dictionary& dict() { return dict_; }
  const rdf::Dictionary& dict() const { return dict_; }

  /// Matches a triple pattern with 0 meaning "wildcard" in any position;
  /// appends results to `out`. Uses the best index for the bound set.
  void Match(TermId s, TermId p, TermId o,
             std::vector<EncodedTriple>& out) const;

  /// Number of triples with predicate `p` (relation cardinality for the
  /// relational engine's statistics).
  size_t CountPredicate(TermId p) const;

  /// Number of distinct subjects / objects under predicate `p`
  /// (distinct-value statistics for join selectivity estimation).
  size_t DistinctSubjects(TermId p) const;
  size_t DistinctObjects(TermId p) const;

  /// All triples with predicate `p` as a contiguous span of the POS
  /// index (sorted by object, then subject).
  std::pair<const EncodedTriple*, const EncodedTriple*> PredicateSpan(
      TermId p) const;

 private:
  bool built_ = false;
  rdf::Dictionary dict_;
  std::vector<EncodedTriple> spo_;  // sorted (s, p, o)
  std::vector<EncodedTriple> pos_;  // sorted (p, o, s)
  std::vector<EncodedTriple> pso_;  // sorted (p, s, o)
  std::unordered_map<TermId, std::pair<size_t, size_t>> pred_stats_;
};

}  // namespace sparqlog::store

#endif  // SPARQLOG_STORE_STORE_H_
