#include "store/store.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace sparqlog::store {

namespace {

struct PosLess {
  bool operator()(const EncodedTriple& a, const EncodedTriple& b) const {
    if (a.p != b.p) return a.p < b.p;
    if (a.o != b.o) return a.o < b.o;
    return a.s < b.s;
  }
};

struct PsoLess {
  bool operator()(const EncodedTriple& a, const EncodedTriple& b) const {
    if (a.p != b.p) return a.p < b.p;
    if (a.s != b.s) return a.s < b.s;
    return a.o < b.o;
  }
};

}  // namespace

void TripleStore::Add(const std::string& s, const std::string& p,
                      const std::string& o) {
  Add(EncodedTriple{dict_.Intern(s), dict_.Intern(p), dict_.Intern(o)});
}

void TripleStore::Add(EncodedTriple t) {
  built_ = false;
  spo_.push_back(t);
}

void TripleStore::Build() {
  if (built_) return;
  std::sort(spo_.begin(), spo_.end());
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  pos_ = spo_;
  std::sort(pos_.begin(), pos_.end(), PosLess());
  pso_ = spo_;
  std::sort(pso_.begin(), pso_.end(), PsoLess());
  // Per-predicate distinct counts.
  pred_stats_.clear();
  size_t i = 0;
  while (i < pso_.size()) {
    TermId p = pso_[i].p;
    size_t j = i;
    std::set<TermId> subjects, objects;
    while (j < pso_.size() && pso_[j].p == p) {
      subjects.insert(pso_[j].s);
      objects.insert(pso_[j].o);
      ++j;
    }
    pred_stats_[p] = {subjects.size(), objects.size()};
    i = j;
  }
  built_ = true;
}

void TripleStore::Match(TermId s, TermId p, TermId o,
                        std::vector<EncodedTriple>& out) const {
  assert(built_ && "call Build() before Match()");
  auto emit_range = [&out](auto begin, auto end, auto pred) {
    for (auto it = begin; it != end; ++it) {
      if (pred(*it)) out.push_back(*it);
    }
  };
  if (s != 0) {
    // SPO index: lower_bound on (s, p|0, o|0).
    EncodedTriple lo{s, p, o};
    auto begin = std::lower_bound(spo_.begin(), spo_.end(), lo);
    auto end = std::upper_bound(
        spo_.begin(), spo_.end(),
        EncodedTriple{s, p == 0 ? ~TermId{0} : p, o == 0 ? ~TermId{0} : o});
    emit_range(begin, end, [&](const EncodedTriple& t) {
      return t.s == s && (p == 0 || t.p == p) && (o == 0 || t.o == o);
    });
    return;
  }
  if (p != 0 && o != 0) {
    EncodedTriple lo{0, p, o};
    auto begin = std::lower_bound(pos_.begin(), pos_.end(), lo, PosLess());
    emit_range(begin, pos_.end(), [&](const EncodedTriple& t) {
      return t.p == p && t.o == o;
    });
    // Early exit: the range is contiguous, stop at the first mismatch.
    return;
  }
  if (p != 0) {
    auto [begin, end] = PredicateSpan(p);
    for (auto* it = begin; it != end; ++it) out.push_back(*it);
    return;
  }
  if (o != 0) {
    emit_range(pos_.begin(), pos_.end(),
               [&](const EncodedTriple& t) { return t.o == o; });
    return;
  }
  out.insert(out.end(), spo_.begin(), spo_.end());
}

size_t TripleStore::CountPredicate(TermId p) const {
  auto [begin, end] = PredicateSpan(p);
  return static_cast<size_t>(end - begin);
}

size_t TripleStore::DistinctSubjects(TermId p) const {
  auto it = pred_stats_.find(p);
  return it == pred_stats_.end() ? 0 : it->second.first;
}

size_t TripleStore::DistinctObjects(TermId p) const {
  auto it = pred_stats_.find(p);
  return it == pred_stats_.end() ? 0 : it->second.second;
}

std::pair<const EncodedTriple*, const EncodedTriple*>
TripleStore::PredicateSpan(TermId p) const {
  assert(built_);
  EncodedTriple lo{0, p, 0};
  auto begin = std::lower_bound(pso_.begin(), pso_.end(), lo, PsoLess());
  EncodedTriple hi{~TermId{0}, p, ~TermId{0}};
  auto end = std::upper_bound(pso_.begin(), pso_.end(), hi, PsoLess());
  return {pso_.data() + (begin - pso_.begin()),
          pso_.data() + (end - pso_.begin())};
}

}  // namespace sparqlog::store
