#include "store/engine.h"

#include <algorithm>
#include <unordered_map>

namespace sparqlog::store {

namespace {

using Clock = std::chrono::steady_clock;

/// Bindings: variable id (1-based positive index) -> TermId (0 unbound).
using Binding = std::vector<TermId>;

size_t VarIndex(int64_t v) { return static_cast<size_t>(-v) - 1; }

/// Resolves a pattern position under a binding: constant, bound
/// variable value, or 0 (wildcard).
TermId Resolve(int64_t pos, const Binding& b) {
  if (pos >= 1) return static_cast<TermId>(pos);
  TermId bound = b[VarIndex(pos)];
  return bound;
}

struct DeadlineChecker {
  Clock::time_point deadline;
  mutable int counter = 0;
  bool Expired() const {
    if (++counter % 1024 != 0) return false;
    return Clock::now() >= deadline;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// GraphEngine: pipelined index nested loops with greedy join ordering.
// ---------------------------------------------------------------------------

namespace {

/// Estimated matches of a pattern given which variables are bound.
double EstimatePattern(const TripleStore& store, const BgpPattern& t,
                       const std::vector<bool>& bound) {
  auto is_bound = [&](int64_t pos) {
    return pos >= 1 || (pos <= -1 && bound[VarIndex(pos)]);
  };
  double card = t.p >= 1
                    ? static_cast<double>(store.CountPredicate(
                          static_cast<TermId>(t.p)))
                    : static_cast<double>(store.size());
  if (is_bound(t.s)) {
    double distinct = t.p >= 1 ? static_cast<double>(store.DistinctSubjects(
                                     static_cast<TermId>(t.p)))
                               : card;
    card /= std::max(1.0, distinct);
  }
  if (is_bound(t.o)) {
    double distinct = t.p >= 1 ? static_cast<double>(store.DistinctObjects(
                                     static_cast<TermId>(t.p)))
                               : card;
    card /= std::max(1.0, distinct);
  }
  return std::max(card, 0.001);
}

bool SharesBoundVar(const BgpPattern& t, const std::vector<bool>& bound) {
  for (int64_t pos : {t.s, t.p, t.o}) {
    if (pos <= -1 && bound[VarIndex(pos)]) return true;
  }
  return false;
}

struct PipelineContext {
  const TripleStore& store;
  const std::vector<BgpPattern>& order;
  EvalMode mode;
  DeadlineChecker deadline;
  uint64_t results = 0;
  bool timed_out = false;
};

bool Backtrack(PipelineContext& ctx, size_t depth, Binding& binding) {
  if (ctx.deadline.Expired()) {
    ctx.timed_out = true;
    return true;  // abort
  }
  if (depth == ctx.order.size()) {
    ++ctx.results;
    return ctx.mode == EvalMode::kAsk;  // stop at first witness
  }
  const BgpPattern& t = ctx.order[depth];
  TermId s = Resolve(t.s, binding);
  TermId p = Resolve(t.p, binding);
  TermId o = Resolve(t.o, binding);
  std::vector<rdf::EncodedTriple> matches;
  ctx.store.Match(s, p, o, matches);
  for (const rdf::EncodedTriple& m : matches) {
    // Bind unbound variables; verify consistency for repeated vars.
    TermId saved_s = 0, saved_p = 0, saved_o = 0;
    bool ok = true;
    auto bind = [&](int64_t pos, TermId value, TermId& saved) {
      if (pos >= 1) return true;
      size_t idx = VarIndex(pos);
      if (binding[idx] == 0) {
        binding[idx] = value;
        saved = static_cast<TermId>(idx) + 1;  // remember to unbind
        return true;
      }
      return binding[idx] == value;
    };
    ok = bind(t.s, m.s, saved_s) && bind(t.p, m.p, saved_p) &&
         bind(t.o, m.o, saved_o);
    if (ok) {
      if (Backtrack(ctx, depth + 1, binding)) {
        // Unbind before unwinding.
        if (saved_s != 0) binding[saved_s - 1] = 0;
        if (saved_p != 0) binding[saved_p - 1] = 0;
        if (saved_o != 0) binding[saved_o - 1] = 0;
        return true;
      }
    }
    if (saved_s != 0) binding[saved_s - 1] = 0;
    if (saved_p != 0) binding[saved_p - 1] = 0;
    if (saved_o != 0) binding[saved_o - 1] = 0;
  }
  return false;
}

}  // namespace

EvalStats GraphEngine::Evaluate(const BgpQuery& q, EvalMode mode,
                                std::chrono::nanoseconds timeout) const {
  EvalStats stats;
  auto start = Clock::now();

  // Greedy ordering: start from the most selective pattern; repeatedly
  // add the connected pattern with the lowest conditional estimate.
  std::vector<BgpPattern> order;
  std::vector<bool> used(q.triples.size(), false);
  std::vector<bool> bound(static_cast<size_t>(q.num_vars), false);
  for (size_t step = 0; step < q.triples.size(); ++step) {
    double best = 0;
    int best_idx = -1;
    for (size_t i = 0; i < q.triples.size(); ++i) {
      if (used[i]) continue;
      bool connected = step == 0 || SharesBoundVar(q.triples[i], bound);
      double est = EstimatePattern(store_, q.triples[i], bound);
      if (!connected) est *= 1e6;  // avoid cartesian products
      if (best_idx < 0 || est < best) {
        best = est;
        best_idx = static_cast<int>(i);
      }
    }
    used[static_cast<size_t>(best_idx)] = true;
    const BgpPattern& t = q.triples[static_cast<size_t>(best_idx)];
    order.push_back(t);
    for (int64_t pos : {t.s, t.p, t.o}) {
      if (pos <= -1) bound[VarIndex(pos)] = true;
    }
  }

  PipelineContext ctx{store_, order, mode,
                      DeadlineChecker{start + timeout}, 0, false};
  Binding binding(static_cast<size_t>(q.num_vars), 0);
  Backtrack(ctx, 0, binding);

  stats.timed_out = ctx.timed_out;
  stats.num_results = ctx.results;
  stats.matched = ctx.results > 0;
  auto elapsed = ctx.timed_out ? timeout : (Clock::now() - start);
  stats.elapsed_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  return stats;
}

// ---------------------------------------------------------------------------
// RelationalEngine: left-deep materializing joins in syntactic order.
// ---------------------------------------------------------------------------

namespace {

/// A materialized relation: schema = list of variable indexes, rows =
/// flat tuples.
struct Relation {
  std::vector<size_t> schema;  // variable index per column
  std::vector<TermId> rows;    // row-major
  size_t width() const { return schema.size(); }
  size_t size() const { return schema.empty() ? 0 : rows.size() / width(); }
};

Relation ScanPattern(const TripleStore& store, const BgpPattern& t) {
  Relation rel;
  std::vector<rdf::EncodedTriple> matches;
  store.Match(t.s >= 1 ? static_cast<TermId>(t.s) : 0,
              t.p >= 1 ? static_cast<TermId>(t.p) : 0,
              t.o >= 1 ? static_cast<TermId>(t.o) : 0, matches);
  // Schema: distinct variables, in s,p,o order.
  std::vector<int64_t> var_pos;
  for (int64_t pos : {t.s, t.p, t.o}) {
    if (pos <= -1 &&
        std::find(var_pos.begin(), var_pos.end(), pos) == var_pos.end()) {
      var_pos.push_back(pos);
    }
  }
  for (int64_t pos : var_pos) rel.schema.push_back(VarIndex(pos));
  for (const rdf::EncodedTriple& m : matches) {
    // Repeated-variable consistency within the triple.
    TermId values[3] = {m.s, m.p, m.o};
    int64_t positions[3] = {t.s, t.p, t.o};
    bool ok = true;
    std::unordered_map<int64_t, TermId> seen;
    for (int i = 0; i < 3 && ok; ++i) {
      if (positions[i] > -1) continue;
      auto [it, inserted] = seen.emplace(positions[i], values[i]);
      if (!inserted && it->second != values[i]) ok = false;
    }
    if (!ok) continue;
    for (int64_t pos : var_pos) {
      for (int i = 0; i < 3; ++i) {
        if (positions[i] == pos) {
          rel.rows.push_back(values[i]);
          break;
        }
      }
    }
  }
  return rel;
}

std::vector<std::pair<size_t, size_t>> SharedColumns(const Relation& a,
                                                     const Relation& b) {
  std::vector<std::pair<size_t, size_t>> shared;
  for (size_t i = 0; i < a.schema.size(); ++i) {
    for (size_t j = 0; j < b.schema.size(); ++j) {
      if (a.schema[i] == b.schema[j]) shared.emplace_back(i, j);
    }
  }
  return shared;
}

void EmitJoined(const Relation& a, const Relation& b, size_t row_a,
                size_t row_b,
                const std::vector<std::pair<size_t, size_t>>& shared,
                Relation& out) {
  const TermId* ra = a.rows.data() + row_a * a.width();
  const TermId* rb = b.rows.data() + row_b * b.width();
  for (size_t i = 0; i < a.width(); ++i) out.rows.push_back(ra[i]);
  for (size_t j = 0; j < b.width(); ++j) {
    bool is_shared = false;
    for (const auto& [ai, bj] : shared) {
      if (bj == j) is_shared = true;
    }
    if (!is_shared) out.rows.push_back(rb[j]);
  }
}

Relation JoinSchema(const Relation& a, const Relation& b,
                    const std::vector<std::pair<size_t, size_t>>& shared) {
  Relation out;
  out.schema = a.schema;
  for (size_t j = 0; j < b.schema.size(); ++j) {
    bool is_shared = false;
    for (const auto& [ai, bj] : shared) {
      if (bj == j) is_shared = true;
    }
    if (!is_shared) out.schema.push_back(b.schema[j]);
  }
  return out;
}

bool RowsMatch(const Relation& a, const Relation& b, size_t ra, size_t rb,
               const std::vector<std::pair<size_t, size_t>>& shared) {
  for (const auto& [i, j] : shared) {
    if (a.rows[ra * a.width() + i] != b.rows[rb * b.width() + j]) {
      return false;
    }
  }
  return true;
}

/// Nested-loop join (quadratic) — what the planner picks when it
/// *believes* inputs are small.
bool NestedLoopJoin(const Relation& a, const Relation& b,
                    const std::vector<std::pair<size_t, size_t>>& shared,
                    const DeadlineChecker& deadline, Relation& out) {
  out = JoinSchema(a, b, shared);
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      if (deadline.Expired()) return false;
      if (RowsMatch(a, b, i, j, shared)) EmitJoined(a, b, i, j, shared, out);
    }
  }
  return true;
}

/// Hash join on the first shared column (residual equality on the rest).
bool HashJoin(const Relation& a, const Relation& b,
              const std::vector<std::pair<size_t, size_t>>& shared,
              const DeadlineChecker& deadline, Relation& out) {
  out = JoinSchema(a, b, shared);
  if (shared.empty()) {
    return NestedLoopJoin(a, b, shared, deadline, out);
  }
  auto [key_a, key_b] = shared[0];
  std::unordered_multimap<TermId, size_t> table;
  table.reserve(b.size());
  for (size_t j = 0; j < b.size(); ++j) {
    if (deadline.Expired()) return false;
    table.emplace(b.rows[j * b.width() + key_b], j);
  }
  for (size_t i = 0; i < a.size(); ++i) {
    auto range = table.equal_range(a.rows[i * a.width() + key_a]);
    for (auto it = range.first; it != range.second; ++it) {
      if (deadline.Expired()) return false;
      if (RowsMatch(a, b, i, it->second, shared)) {
        EmitJoined(a, b, i, it->second, shared, out);
      }
    }
  }
  return true;
}

double EstimateScan(const TripleStore& store, const BgpPattern& t) {
  double card = t.p >= 1 ? static_cast<double>(store.CountPredicate(
                               static_cast<TermId>(t.p)))
                         : static_cast<double>(store.size());
  if (t.s >= 1) card /= std::max<double>(
      1.0, static_cast<double>(
               t.p >= 1 ? store.DistinctSubjects(static_cast<TermId>(t.p))
                        : store.size()));
  if (t.o >= 1) card /= std::max<double>(
      1.0, static_cast<double>(
               t.p >= 1 ? store.DistinctObjects(static_cast<TermId>(t.p))
                        : store.size()));
  return std::max(card, 1.0);
}

}  // namespace

EvalStats RelationalEngine::Evaluate(const BgpQuery& q, EvalMode mode,
                                     std::chrono::nanoseconds timeout) const {
  (void)mode;  // relational plans materialize fully even under EXISTS
  EvalStats stats;
  auto start = Clock::now();
  DeadlineChecker deadline{start + timeout};

  // Left-deep pipeline in syntactic order; independence-assumption
  // estimates drive the operator choice per step.
  Relation acc;
  double est = 0;
  double distinct_guess = 0;
  bool first = true;
  for (const BgpPattern& t : q.triples) {
    Relation next = ScanPattern(store_, t);
    if (first) {
      acc = std::move(next);
      est = EstimateScan(store_, t);
      distinct_guess =
          t.p >= 1 ? static_cast<double>(std::max<size_t>(
                         1, store_.DistinctObjects(static_cast<TermId>(t.p))))
                   : est;
      first = false;
      continue;
    }
    auto shared = SharedColumns(acc, next);
    // Independence-assumption estimate: |L|*|R| / prod(max distinct).
    double right_est = EstimateScan(store_, t);
    double join_est = est * right_est;
    for (size_t k = 0; k < shared.size(); ++k) {
      join_est /= std::max(1.0, distinct_guess);
    }
    Relation out;
    bool finished;
    stats.intermediate_tuples += acc.size() + next.size();
    if (join_est <= options_.nlj_estimate_threshold) {
      finished = NestedLoopJoin(acc, next, shared, deadline, out);
    } else {
      finished = HashJoin(acc, next, shared, deadline, out);
    }
    if (!finished) {
      stats.timed_out = true;
      stats.elapsed_ns = static_cast<double>(timeout.count());
      return stats;
    }
    acc = std::move(out);
    est = join_est;
    distinct_guess = std::max(
        distinct_guess,
        t.p >= 1 ? static_cast<double>(std::max<size_t>(
                       1, store_.DistinctObjects(static_cast<TermId>(t.p))))
                 : 1.0);
  }
  stats.num_results = acc.size();
  stats.matched = acc.size() > 0;
  stats.intermediate_tuples += acc.size();
  auto elapsed = Clock::now() - start;
  stats.elapsed_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  return stats;
}

}  // namespace sparqlog::store
