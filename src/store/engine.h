#ifndef SPARQLOG_STORE_ENGINE_H_
#define SPARQLOG_STORE_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "store/store.h"

namespace sparqlog::store {

/// A conjunctive (BGP) query over the store: each pattern position is
/// either a constant TermId or a variable (negative ids -1, -2, ...).
struct BgpPattern {
  /// >= 1: constant TermId; <= -1: variable id.
  int64_t s = 0, p = 0, o = 0;
};

struct BgpQuery {
  std::vector<BgpPattern> triples;
  int num_vars = 0;

  /// Declares a fresh variable; returns its (negative) id.
  int64_t AddVar() { return -(++num_vars); }
};

/// Execution mode: the Section 5.1 experiment runs Ask workloads; Select
/// mode counts all results.
enum class EvalMode { kAsk, kSelect };

/// Execution statistics for one query.
struct EvalStats {
  bool matched = false;          ///< Ask answer / result-set non-empty
  uint64_t num_results = 0;      ///< Select result count (Ask: 0 or 1)
  uint64_t intermediate_tuples = 0;  ///< total materialized tuples
  bool timed_out = false;
  double elapsed_ns = 0;
};

/// Abstract query engine interface over a shared TripleStore.
class Engine {
 public:
  virtual ~Engine() = default;
  virtual std::string name() const = 0;

  /// Evaluates `q` with a wall-clock deadline; on timeout, stats report
  /// timed_out and elapsed_ns includes the full timeout (the paper's
  /// Figure 3 counts timeouts at the 300s cap).
  virtual EvalStats Evaluate(const BgpQuery& q, EvalMode mode,
                             std::chrono::nanoseconds timeout) const = 0;
};

/// Blazegraph stand-in: pipelined index nested-loop joins with greedy
/// selectivity-based ordering over variable-connected patterns, early
/// exit in Ask mode, no intermediate materialization.
class GraphEngine : public Engine {
 public:
  explicit GraphEngine(const TripleStore& store) : store_(store) {}
  std::string name() const override { return "GraphEngine(BG)"; }
  EvalStats Evaluate(const BgpQuery& q, EvalMode mode,
                     std::chrono::nanoseconds timeout) const override;

 private:
  const TripleStore& store_;
};

/// PostgreSQL stand-in: left-deep pairwise joins in syntactic order with
/// full materialization of every intermediate relation. Join operators
/// are chosen from independence-assumption cardinality estimates — on
/// cyclic join graphs those estimates collapse (the classic correlated-
/// selectivity failure) and the engine picks nested-loop joins on huge
/// actual inputs, which is what produces the timeout behaviour the paper
/// observes for PG cycle workloads (Figure 3 bottom).
class RelationalEngine : public Engine {
 public:
  struct Options {
    /// Estimated-cardinality threshold under which a nested-loop join is
    /// chosen over a hash join. Single-variable joins estimate in the
    /// thousands and pick hash joins; the closing join of a cycle shares
    /// two variables, its independence-assumption estimate collapses
    /// below this threshold, and the engine picks a nested loop over the
    /// huge materialized intermediate — the classic correlated-
    /// selectivity failure.
    double nlj_estimate_threshold = 500.0;
  };

  explicit RelationalEngine(const TripleStore& store)
      : store_(store), options_() {}
  RelationalEngine(const TripleStore& store, const Options& options)
      : store_(store), options_(options) {}
  std::string name() const override { return "RelationalEngine(PG)"; }
  EvalStats Evaluate(const BgpQuery& q, EvalMode mode,
                     std::chrono::nanoseconds timeout) const override;

 private:
  const TripleStore& store_;
  Options options_;
};

}  // namespace sparqlog::store

#endif  // SPARQLOG_STORE_ENGINE_H_
