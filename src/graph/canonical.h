#ifndef SPARQLOG_GRAPH_CANONICAL_H_
#define SPARQLOG_GRAPH_CANONICAL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/hypergraph.h"
#include "rdf/term.h"
#include "sparql/ast.h"

namespace sparqlog::graph {

/// Options for canonical graph construction (Sections 5 and 6.1).
struct CanonicalOptions {
  /// Include constant (IRI/literal) endpoints as graph nodes. The paper
  /// runs the shape analysis both ways.
  bool include_constants = true;
  /// Collapse nodes ?x and ?y when a filter `?x = ?y` is present
  /// (footnote 20 of the paper).
  bool collapse_equality_filters = true;
};

/// Interns terms for canonical-graph construction, assigning dense ids
/// in first-seen order. The key is the pre-change NodeKey string
/// (kind-tag char + value, literals extended with "^datatype@lang") —
/// but hashed and compared as a virtual byte stream, so no key string
/// is ever materialized. Open addressing over a recycled slot table:
/// steady-state interning allocates nothing.
class TermInterner {
 public:
  TermInterner() = default;

  /// Returns the id of `t`, inserting it if unseen. The term pointer is
  /// retained; it must outlive the interner's current epoch (terms live
  /// in the query AST being analyzed).
  int Intern(const rdf::Term& t);

  int size() const { return static_cast<int>(terms_.size()); }
  const rdf::Term* term(int id) const {
    return terms_[static_cast<size_t>(id)];
  }

  /// Forgets all terms but keeps table capacity.
  void Clear();

 private:
  struct Slot {
    uint64_t hash = 0;
    uint32_t epoch = 0;  // occupied iff == current interner epoch
    int id = 0;
  };
  void Grow();

  std::vector<Slot> slots_;               // power-of-two open addressing
  std::vector<const rdf::Term*> terms_;   // id -> first-seen term
  uint32_t epoch_ = 1;                    // slots start at 0 = never used
};

/// Recycled working state for canonical graph/hypergraph construction:
/// the term interner, the union-find over term ids (`?x = ?y`
/// collapsing), and the class->node id table. One instance per analyzer
/// (one analyzer per pipeline worker); every container is cleared, not
/// reallocated, between queries.
class CanonicalScratch {
 public:
  void Clear();

  TermInterner interner;
  std::vector<int> uf_parent;
  std::vector<int> class_to_node;  // uf class id -> graph node, -1 unset
  std::vector<std::pair<const rdf::Term*, const rdf::Term*>> eq_pairs;

  int UfAdd();
  int UfFind(int x);
  void UfUnion(int a, int b) { uf_parent[static_cast<size_t>(UfFind(a))] = UfFind(b); }
};

/// Result of building a canonical graph: the graph plus the term that
/// each node represents (after equality collapsing, a representative).
/// `node_terms` point into the analyzed query's AST (or, for the
/// value-returning convenience builders, element-for-element into
/// `owned_terms` — that invariant is what the copy operations rely on
/// to re-point the borrowed pointers at the copy's own backing store).
struct CanonicalGraph {
  Graph graph;
  std::vector<const rdf::Term*> node_terms;
  std::vector<rdf::Term> owned_terms;  // backing copies (wrappers only)
  bool valid = true;

  CanonicalGraph() = default;
  CanonicalGraph(CanonicalGraph&&) = default;
  CanonicalGraph& operator=(CanonicalGraph&&) = default;
  CanonicalGraph(const CanonicalGraph& o) { *this = o; }
  CanonicalGraph& operator=(const CanonicalGraph& o) {
    graph = o.graph;
    node_terms = o.node_terms;
    owned_terms = o.owned_terms;
    valid = o.valid;
    if (!owned_terms.empty()) {
      // Owned mode: node_terms[i] aliased o.owned_terms[i]; re-point at
      // this copy's storage so the copy is self-contained.
      for (size_t i = 0; i < node_terms.size(); ++i) {
        node_terms[i] = &owned_terms[i];
      }
    }
    return *this;
  }
};

/// Builds the canonical graph of the pattern's triples into `out`,
/// reusing `out`'s and `scratch`'s buffers: one edge {x, y} per triple
/// pattern (x, l, y) with constant predicate l. Equality filters are
/// taken from `filters`. `out.node_terms` borrow from the triples'
/// terms and are valid only while the query AST lives.
void BuildCanonicalGraph(
    const std::vector<const sparql::TriplePattern*>& triples,
    const std::vector<const sparql::Expr*>& filters,
    const CanonicalOptions& options, CanonicalScratch& scratch,
    CanonicalGraph& out);

/// Value-returning convenience form (tests, examples): same graph, with
/// `node_terms` re-pointed at owned copies so the result outlives the
/// query.
CanonicalGraph BuildCanonicalGraph(
    const std::vector<const sparql::TriplePattern*>& triples,
    const std::vector<const sparql::Expr*>& filters,
    const CanonicalOptions& options = CanonicalOptions());

/// Convenience overload over a whole query body: collects triples and
/// filters from the pattern tree first.
CanonicalGraph BuildCanonicalGraph(
    const sparql::Pattern& body,
    const CanonicalOptions& options = CanonicalOptions());

/// Builds the canonical hypergraph into `out` (scratch-reusing): one
/// hyperedge per triple pattern, containing the variables and blank
/// nodes of that triple (constants are excluded by definition;
/// Section 5).
void BuildCanonicalHypergraph(
    const std::vector<const sparql::TriplePattern*>& triples,
    const std::vector<const sparql::Expr*>& filters,
    const CanonicalOptions& options, CanonicalScratch& scratch,
    Hypergraph& out);

/// Value-returning convenience form.
Hypergraph BuildCanonicalHypergraph(
    const std::vector<const sparql::TriplePattern*>& triples,
    const std::vector<const sparql::Expr*>& filters,
    const CanonicalOptions& options = CanonicalOptions());

/// Collects triples and (recursively) filter expressions of a pattern
/// subtree, excluding subqueries and EXISTS bodies.
void CollectTriplesAndFilters(const sparql::Pattern& body,
                              std::vector<const sparql::TriplePattern*>& triples,
                              std::vector<const sparql::Expr*>& filters);

/// True iff `e` is an equality between two variables (`?x = ?y`).
bool IsVarEqualityFilter(const sparql::Expr& e);

}  // namespace sparqlog::graph

#endif  // SPARQLOG_GRAPH_CANONICAL_H_
