#ifndef SPARQLOG_GRAPH_CANONICAL_H_
#define SPARQLOG_GRAPH_CANONICAL_H_

#include <map>
#include <vector>

#include "graph/graph.h"
#include "graph/hypergraph.h"
#include "rdf/term.h"
#include "sparql/ast.h"

namespace sparqlog::graph {

/// Options for canonical graph construction (Sections 5 and 6.1).
struct CanonicalOptions {
  /// Include constant (IRI/literal) endpoints as graph nodes. The paper
  /// runs the shape analysis both ways.
  bool include_constants = true;
  /// Collapse nodes ?x and ?y when a filter `?x = ?y` is present
  /// (footnote 20 of the paper).
  bool collapse_equality_filters = true;
};

/// Result of building a canonical graph: the graph plus the term that
/// each node represents (after equality collapsing, a representative).
struct CanonicalGraph {
  Graph graph;
  std::vector<rdf::Term> node_terms;
  /// False iff some triple pattern has a variable in predicate position
  /// (then the graph is not meaningful; use the hypergraph instead).
  bool valid = true;
};

/// Builds the canonical graph of the pattern's triples: one edge {x, y}
/// per triple pattern (x, l, y) with constant predicate l.
/// Equality filters are taken from `filters`.
CanonicalGraph BuildCanonicalGraph(
    const std::vector<const sparql::TriplePattern*>& triples,
    const std::vector<const sparql::Expr*>& filters,
    const CanonicalOptions& options = CanonicalOptions());

/// Convenience overload over a whole query body: collects triples and
/// filters from the pattern tree first.
CanonicalGraph BuildCanonicalGraph(
    const sparql::Pattern& body,
    const CanonicalOptions& options = CanonicalOptions());

/// Builds the canonical hypergraph: one hyperedge per triple pattern,
/// containing the variables and blank nodes of that triple (constants
/// are excluded by definition; Section 5).
Hypergraph BuildCanonicalHypergraph(
    const std::vector<const sparql::TriplePattern*>& triples,
    const std::vector<const sparql::Expr*>& filters,
    const CanonicalOptions& options = CanonicalOptions());

/// Collects triples and (recursively) filter expressions of a pattern
/// subtree, excluding subqueries and EXISTS bodies.
void CollectTriplesAndFilters(const sparql::Pattern& body,
                              std::vector<const sparql::TriplePattern*>& triples,
                              std::vector<const sparql::Expr*>& filters);

/// True iff `e` is an equality between two variables (`?x = ?y`).
bool IsVarEqualityFilter(const sparql::Expr& e);

}  // namespace sparqlog::graph

#endif  // SPARQLOG_GRAPH_CANONICAL_H_
