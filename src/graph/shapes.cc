#include "graph/shapes.h"

#include <algorithm>
#include <functional>
#include <set>
#include <vector>

namespace sparqlog::graph {

namespace {

/// Biconnected components (blocks) as edge lists, via Tarjan/Hopcroft.
/// Self-loops are not part of any block here; handled separately.
std::vector<std::vector<std::pair<int, int>>> Blocks(const Graph& g) {
  int n = g.num_nodes();
  std::vector<int> disc(static_cast<size_t>(n), -1),
      low(static_cast<size_t>(n), 0);
  std::vector<std::pair<int, int>> edge_stack;
  std::vector<std::vector<std::pair<int, int>>> blocks;
  int timer = 0;

  std::function<void(int, int)> dfs = [&](int u, int parent) {
    disc[static_cast<size_t>(u)] = low[static_cast<size_t>(u)] = timer++;
    bool skipped_parent_edge = false;
    for (int v : g.Neighbors(u)) {
      if (v == parent && !skipped_parent_edge) {
        // Skip exactly one copy of the tree edge back to the parent.
        skipped_parent_edge = true;
        continue;
      }
      if (disc[static_cast<size_t>(v)] < 0) {
        edge_stack.emplace_back(u, v);
        dfs(v, u);
        low[static_cast<size_t>(u)] =
            std::min(low[static_cast<size_t>(u)], low[static_cast<size_t>(v)]);
        if (low[static_cast<size_t>(v)] >= disc[static_cast<size_t>(u)]) {
          // u is an articulation point (or root): pop one block.
          std::vector<std::pair<int, int>> block;
          for (;;) {
            auto e = edge_stack.back();
            edge_stack.pop_back();
            block.push_back(e);
            if (e.first == u && e.second == v) break;
          }
          blocks.push_back(std::move(block));
        }
      } else if (disc[static_cast<size_t>(v)] < disc[static_cast<size_t>(u)]) {
        edge_stack.emplace_back(u, v);
        low[static_cast<size_t>(u)] =
            std::min(low[static_cast<size_t>(u)], disc[static_cast<size_t>(v)]);
      }
    }
  };

  for (int u = 0; u < n; ++u) {
    if (disc[static_cast<size_t>(u)] < 0) dfs(u, -1);
  }
  return blocks;
}

/// Degree table of a block given as an edge list.
std::set<int> BlockNodes(const std::vector<std::pair<int, int>>& block) {
  std::set<int> nodes;
  for (const auto& [u, v] : block) {
    nodes.insert(u);
    nodes.insert(v);
  }
  return nodes;
}

/// Checks whether a cyclic block is a petal and reports its allowed
/// attachment nodes: for a plain cycle, every node; for a generalized
/// theta (two branch nodes of equal degree, rest degree 2), the two
/// branch nodes; empty set if not a petal.
std::set<int> PetalCenters(const std::vector<std::pair<int, int>>& block) {
  std::set<int> nodes = BlockNodes(block);
  std::vector<std::pair<int, int>> degrees;  // (node, degree in block)
  {
    std::vector<std::pair<int, int>> tmp;
    for (int v : nodes) {
      int d = 0;
      for (const auto& [a, b] : block) {
        if (a == v || b == v) ++d;
      }
      degrees.emplace_back(v, d);
    }
  }
  std::set<int> branch;
  for (const auto& [v, d] : degrees) {
    if (d > 2) branch.insert(v);
    if (d < 2) return {};  // cannot happen in a 2-connected block
  }
  if (branch.empty()) return nodes;  // a simple cycle
  if (branch.size() != 2) return {};
  auto it = branch.begin();
  int u = *it++;
  int v = *it;
  int du = 0, dv = 0;
  for (const auto& [a, b] : block) {
    if (a == u || b == u) ++du;
    if (a == v || b == v) ++dv;
  }
  if (du != dv) return {};
  // Two equal-degree branch nodes, all others degree 2, 2-connected:
  // a union of du internally node-disjoint u-v paths, i.e. a petal.
  return branch;
}

}  // namespace

bool IsPetal(const Graph& g) {
  if (!g.self_loops().empty()) return false;
  if (g.num_nodes() < 2 || g.IsAcyclic()) return false;
  auto components = g.ConnectedComponents();
  if (components.size() != 1) return false;
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < g.num_nodes(); ++u) {
    for (int v : g.Neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  // A petal is a single 2-connected block with the branch structure above.
  auto blocks = Blocks(g);
  if (blocks.size() != 1) return false;
  if (blocks[0].size() != edges.size()) return false;
  return !PetalCenters(blocks[0]).empty();
}

bool IsFlowerWithCenter(const Graph& g, int x) {
  // All self-loops must sit at the center.
  for (int v : g.self_loops()) {
    if (v != x) return false;
  }
  auto blocks = Blocks(g);
  std::set<std::pair<int, int>> petal_edges;
  for (const auto& block : blocks) {
    if (block.size() <= 1) continue;  // a bridge, part of the acyclic part
    std::set<int> centers = PetalCenters(block);
    if (centers.count(x) == 0) return false;
    for (const auto& [u, v] : block) {
      petal_edges.insert({std::min(u, v), std::max(u, v)});
    }
  }
  // Remove petal edges; every remaining nontrivial component must
  // contain x (trees attach to the flower at the center only).
  Graph rest(g.num_nodes());
  for (int u = 0; u < g.num_nodes(); ++u) {
    for (int v : g.Neighbors(u)) {
      if (u < v && petal_edges.count({u, v}) == 0) rest.AddEdge(u, v);
    }
  }
  for (const auto& comp : rest.ConnectedComponents()) {
    if (comp.size() <= 1) continue;
    bool has_edge = false;
    for (int v : comp) {
      if (rest.Degree(v) > 0) has_edge = true;
    }
    if (!has_edge) continue;
    if (std::find(comp.begin(), comp.end(), x) == comp.end()) return false;
  }
  return true;
}

namespace {

bool IsFlowerConnected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  // Acyclic connected graphs (trees) are flowers: pick any center.
  if (g.IsAcyclic()) return true;
  // Candidate centers: common nodes of all cyclic blocks (and self-loop
  // nodes). Compute the intersection of per-block candidate sets.
  auto blocks = Blocks(g);
  bool first = true;
  std::set<int> candidates;
  for (const auto& block : blocks) {
    if (block.size() <= 1) continue;
    std::set<int> centers = PetalCenters(block);
    if (centers.empty()) return false;
    if (first) {
      candidates = std::move(centers);
      first = false;
    } else {
      std::set<int> merged;
      std::set_intersection(candidates.begin(), candidates.end(),
                            centers.begin(), centers.end(),
                            std::inserter(merged, merged.begin()));
      candidates = std::move(merged);
    }
  }
  for (int v : g.self_loops()) {
    if (first) {
      candidates.insert(v);
      // All self-loops must coincide; intersection below enforces it.
    }
  }
  if (!g.self_loops().empty()) {
    std::set<int> loop_nodes(g.self_loops().begin(), g.self_loops().end());
    if (loop_nodes.size() > 1) return false;
    if (first) {
      candidates = loop_nodes;
    } else {
      std::set<int> merged;
      std::set_intersection(candidates.begin(), candidates.end(),
                            loop_nodes.begin(), loop_nodes.end(),
                            std::inserter(merged, merged.begin()));
      candidates = std::move(merged);
    }
  }
  for (int x : candidates) {
    if (IsFlowerWithCenter(g, x)) return true;
  }
  return false;
}

}  // namespace

ShapeClass ClassifyShape(const Graph& g) {
  ShapeClass s;
  s.girth = g.Girth();
  auto components = g.ConnectedComponents();
  bool connected = components.size() <= 1;
  bool acyclic = g.IsAcyclic();

  s.forest = acyclic;
  s.tree = acyclic && connected && g.num_nodes() > 0;
  s.single_edge = g.num_edges() == 1 && g.num_nodes() == 2;

  // Chains: connected, acyclic, max degree <= 2, at least one edge.
  auto is_chain_component = [&](const std::vector<int>& comp) {
    int max_degree = 0;
    for (int v : comp) {
      if (g.HasSelfLoop(v)) return false;
      max_degree = std::max(max_degree, g.Degree(v));
    }
    // Count edges within the component.
    int edges = 0;
    for (int v : comp) edges += g.Degree(v);
    edges /= 2;
    return edges == static_cast<int>(comp.size()) - 1 && max_degree <= 2;
  };
  if (g.num_nodes() > 0) {
    s.chain = connected && is_chain_component(components[0]);
    s.chain_set = true;
    for (const auto& comp : components) {
      if (!is_chain_component(comp)) {
        s.chain_set = false;
        break;
      }
    }
  } else {
    s.chain_set = true;
    s.forest = true;
  }

  // Star: a tree with exactly one node having more than two neighbors.
  if (s.tree) {
    int hubs = 0;
    for (int v = 0; v < g.num_nodes(); ++v) {
      if (g.Degree(v) > 2) ++hubs;
    }
    s.star = hubs == 1;
  }

  // Cycle: connected, all degrees exactly two, exactly one cycle.
  if (connected && g.num_nodes() > 0 && g.self_loops().empty()) {
    bool all_two = true;
    for (int v = 0; v < g.num_nodes(); ++v) {
      if (g.Degree(v) != 2) all_two = false;
    }
    s.cycle = all_two && g.num_proper_edges() == g.num_nodes();
  }
  // Degenerate cycle: one node with a self-loop only.
  if (connected && g.num_nodes() == 1 && g.num_edges() == 1 &&
      !g.self_loops().empty()) {
    s.cycle = true;
  }

  // Flowers.
  if (g.num_nodes() == 0) {
    s.flower = true;
    s.flower_set = true;
  } else {
    std::vector<Graph> comps;
    comps.reserve(components.size());
    s.flower_set = true;
    for (const auto& comp : components) {
      Graph sub = g.InducedSubgraph(comp);
      if (!IsFlowerConnected(sub)) {
        s.flower_set = false;
        break;
      }
    }
    s.flower = connected && s.flower_set;
  }
  return s;
}

}  // namespace sparqlog::graph
