#include "graph/shapes.h"

#include <algorithm>
#include <functional>
#include <set>
#include <vector>

namespace sparqlog::graph {

namespace {

// ---------------------------------------------------------------------------
// Set-based block helpers, kept for the standalone IsPetal /
// IsFlowerWithCenter predicates (test API; not on the per-query hot
// path — ClassifyShape below has its own scratch-reusing pass).
// ---------------------------------------------------------------------------

/// Biconnected components (blocks) as edge lists, via Tarjan/Hopcroft.
/// Self-loops are not part of any block here; handled separately.
std::vector<std::vector<std::pair<int, int>>> Blocks(const Graph& g) {
  int n = g.num_nodes();
  std::vector<int> disc(static_cast<size_t>(n), -1),
      low(static_cast<size_t>(n), 0);
  std::vector<std::pair<int, int>> edge_stack;
  std::vector<std::vector<std::pair<int, int>>> blocks;
  int timer = 0;

  std::function<void(int, int)> dfs = [&](int u, int parent) {
    disc[static_cast<size_t>(u)] = low[static_cast<size_t>(u)] = timer++;
    bool skipped_parent_edge = false;
    for (int v : g.Neighbors(u)) {
      if (v == parent && !skipped_parent_edge) {
        // Skip exactly one copy of the tree edge back to the parent.
        skipped_parent_edge = true;
        continue;
      }
      if (disc[static_cast<size_t>(v)] < 0) {
        edge_stack.emplace_back(u, v);
        dfs(v, u);
        low[static_cast<size_t>(u)] =
            std::min(low[static_cast<size_t>(u)], low[static_cast<size_t>(v)]);
        if (low[static_cast<size_t>(v)] >= disc[static_cast<size_t>(u)]) {
          // u is an articulation point (or root): pop one block.
          std::vector<std::pair<int, int>> block;
          for (;;) {
            auto e = edge_stack.back();
            edge_stack.pop_back();
            block.push_back(e);
            if (e.first == u && e.second == v) break;
          }
          blocks.push_back(std::move(block));
        }
      } else if (disc[static_cast<size_t>(v)] < disc[static_cast<size_t>(u)]) {
        edge_stack.emplace_back(u, v);
        low[static_cast<size_t>(u)] =
            std::min(low[static_cast<size_t>(u)], disc[static_cast<size_t>(v)]);
      }
    }
  };

  for (int u = 0; u < n; ++u) {
    if (disc[static_cast<size_t>(u)] < 0) dfs(u, -1);
  }
  return blocks;
}

std::set<int> BlockNodes(const std::vector<std::pair<int, int>>& block) {
  std::set<int> nodes;
  for (const auto& [u, v] : block) {
    nodes.insert(u);
    nodes.insert(v);
  }
  return nodes;
}

/// Checks whether a cyclic block is a petal and reports its allowed
/// attachment nodes: for a plain cycle, every node; for a generalized
/// theta (two branch nodes of equal degree, rest degree 2), the two
/// branch nodes; empty set if not a petal.
std::set<int> PetalCenters(const std::vector<std::pair<int, int>>& block) {
  std::set<int> nodes = BlockNodes(block);
  std::vector<std::pair<int, int>> degrees;  // (node, degree in block)
  for (int v : nodes) {
    int d = 0;
    for (const auto& [a, b] : block) {
      if (a == v || b == v) ++d;
    }
    degrees.emplace_back(v, d);
  }
  std::set<int> branch;
  for (const auto& [v, d] : degrees) {
    if (d > 2) branch.insert(v);
    if (d < 2) return {};  // cannot happen in a 2-connected block
  }
  if (branch.empty()) return nodes;  // a simple cycle
  if (branch.size() != 2) return {};
  auto it = branch.begin();
  int u = *it++;
  int v = *it;
  int du = 0, dv = 0;
  for (const auto& [a, b] : block) {
    if (a == u || b == u) ++du;
    if (a == v || b == v) ++dv;
  }
  if (du != dv) return {};
  // Two equal-degree branch nodes, all others degree 2, 2-connected:
  // a union of du internally node-disjoint u-v paths, i.e. a petal.
  return branch;
}

}  // namespace

bool IsPetal(const Graph& g) {
  if (!g.self_loops().empty()) return false;
  if (g.num_nodes() < 2 || g.IsAcyclic()) return false;
  auto components = g.ConnectedComponents();
  if (components.size() != 1) return false;
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < g.num_nodes(); ++u) {
    for (int v : g.Neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  // A petal is a single 2-connected block with the branch structure above.
  auto blocks = Blocks(g);
  if (blocks.size() != 1) return false;
  if (blocks[0].size() != edges.size()) return false;
  return !PetalCenters(blocks[0]).empty();
}

bool IsFlowerWithCenter(const Graph& g, int x) {
  // All self-loops must sit at the center.
  for (int v : g.self_loops()) {
    if (v != x) return false;
  }
  auto blocks = Blocks(g);
  std::set<std::pair<int, int>> petal_edges;
  for (const auto& block : blocks) {
    if (block.size() <= 1) continue;  // a bridge, part of the acyclic part
    std::set<int> centers = PetalCenters(block);
    if (centers.count(x) == 0) return false;
    for (const auto& [u, v] : block) {
      petal_edges.insert({std::min(u, v), std::max(u, v)});
    }
  }
  // Remove petal edges; every remaining nontrivial component must
  // contain x (trees attach to the flower at the center only).
  Graph rest(g.num_nodes());
  for (int u = 0; u < g.num_nodes(); ++u) {
    for (int v : g.Neighbors(u)) {
      if (u < v && petal_edges.count({u, v}) == 0) rest.AddEdge(u, v);
    }
  }
  for (const auto& comp : rest.ConnectedComponents()) {
    if (comp.size() <= 1) continue;
    bool has_edge = false;
    for (int v : comp) {
      if (rest.Degree(v) > 0) has_edge = true;
    }
    if (!has_edge) continue;
    if (std::find(comp.begin(), comp.end(), x) == comp.end()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Scratch-reusing classifier: one CSR snapshot, one component pass, one
// girth pass, and one iterative block DFS that folds petal-center
// candidates per component as blocks pop — no per-call containers.
// ---------------------------------------------------------------------------

namespace {

/// Fills s.centers_tmp (ascending) with the petal centers of s.block;
/// leaves it empty when the block is not a petal. Scratch twin of
/// PetalCenters above.
void PetalCentersScratch(ShapeScratch& s) {
  auto& bn = s.block_nodes;
  bn.clear();
  for (const auto& [u, v] : s.block) {
    bn.push_back(u);
    bn.push_back(v);
  }
  std::sort(bn.begin(), bn.end());
  bn.erase(std::unique(bn.begin(), bn.end()), bn.end());
  s.block_deg.assign(bn.size(), 0);
  auto index_of = [&bn](int v) {
    return static_cast<size_t>(
        std::lower_bound(bn.begin(), bn.end(), v) - bn.begin());
  };
  for (const auto& [u, v] : s.block) {
    ++s.block_deg[index_of(u)];
    ++s.block_deg[index_of(v)];
  }
  s.centers_tmp.clear();
  int branch_count = 0;
  size_t b1 = 0, b2 = 0;
  for (size_t i = 0; i < bn.size(); ++i) {
    int d = s.block_deg[i];
    if (d < 2) return;  // cannot happen in a 2-connected block
    if (d > 2) {
      if (branch_count == 0) {
        b1 = i;
      } else if (branch_count == 1) {
        b2 = i;
      }
      ++branch_count;
    }
  }
  if (branch_count == 0) {
    s.centers_tmp = bn;  // a simple cycle: every node
    return;
  }
  if (branch_count != 2) return;
  if (s.block_deg[b1] != s.block_deg[b2]) return;
  // Two equal-degree branch nodes, all others degree 2, 2-connected:
  // a union of internally node-disjoint paths, i.e. a petal.
  s.centers_tmp.push_back(bn[b1]);
  s.centers_tmp.push_back(bn[b2]);
}

/// Folds one popped block into the per-component flower state.
void AbsorbBlock(const Graph& g, ShapeScratch& s) {
  if (s.block.size() == 1) {
    s.bridge_edges.push_back(s.block[0]);
    return;
  }
  size_t c = static_cast<size_t>(s.comp_id[static_cast<size_t>(s.block[0].first)]);
  if (s.comp_flower_bad[c]) return;
  PetalCentersScratch(s);
  if (s.centers_tmp.empty()) {
    s.comp_flower_bad[c] = 1;
    return;
  }
  if (g.small()) {
    uint64_t m = 0;
    for (int x : s.centers_tmp) m |= 1ULL << x;
    if (!s.comp_cand_init[c]) {
      s.comp_cand_bits[c] = m;
    } else {
      s.comp_cand_bits[c] &= m;
    }
  } else {
    auto& list = s.comp_cand_list[c];
    if (!s.comp_cand_init[c]) {
      list = s.centers_tmp;
    } else {
      s.intersect_tmp.clear();
      std::set_intersection(list.begin(), list.end(), s.centers_tmp.begin(),
                            s.centers_tmp.end(),
                            std::back_inserter(s.intersect_tmp));
      list.swap(s.intersect_tmp);
    }
  }
  s.comp_cand_init[c] = 1;
}

/// Iterative Tarjan block DFS (mirrors the recursive Blocks() above,
/// blocks popped at the same articulation points) feeding AbsorbBlock.
void BlocksScratch(const Graph& g, ShapeScratch& s) {
  int n = g.num_nodes();
  s.disc.assign(static_cast<size_t>(n), -1);
  s.low.assign(static_cast<size_t>(n), 0);
  s.edge_stack.clear();
  int timer = 0;
  for (int root = 0; root < n; ++root) {
    if (s.disc[static_cast<size_t>(root)] >= 0) continue;
    s.frames.clear();
    s.disc[static_cast<size_t>(root)] = s.low[static_cast<size_t>(root)] =
        timer++;
    s.frames.push_back(
        {root, -1, s.csr_off[static_cast<size_t>(root)], false});
    while (!s.frames.empty()) {
      ShapeScratch::Frame& f = s.frames.back();
      if (f.it < s.csr_off[static_cast<size_t>(f.v) + 1]) {
        int w = s.csr_adj[static_cast<size_t>(f.it++)];
        if (w == f.parent && !f.skipped) {
          // Skip exactly one copy of the tree edge back to the parent.
          f.skipped = true;
          continue;
        }
        if (s.disc[static_cast<size_t>(w)] < 0) {
          s.edge_stack.emplace_back(f.v, w);
          s.disc[static_cast<size_t>(w)] = s.low[static_cast<size_t>(w)] =
              timer++;
          int parent = f.v;
          s.frames.push_back(
              {w, parent, s.csr_off[static_cast<size_t>(w)], false});
        } else if (s.disc[static_cast<size_t>(w)] <
                   s.disc[static_cast<size_t>(f.v)]) {
          s.edge_stack.emplace_back(f.v, w);
          s.low[static_cast<size_t>(f.v)] = std::min(
              s.low[static_cast<size_t>(f.v)], s.disc[static_cast<size_t>(w)]);
        }
      } else {
        int child = f.v;
        s.frames.pop_back();
        if (s.frames.empty()) break;
        ShapeScratch::Frame& p = s.frames.back();
        s.low[static_cast<size_t>(p.v)] = std::min(
            s.low[static_cast<size_t>(p.v)], s.low[static_cast<size_t>(child)]);
        if (s.low[static_cast<size_t>(child)] >=
            s.disc[static_cast<size_t>(p.v)]) {
          // p.v is an articulation point (or root): pop one block.
          s.block.clear();
          for (;;) {
            auto e = s.edge_stack.back();
            s.edge_stack.pop_back();
            s.block.push_back(e);
            if (e.first == p.v && e.second == child) break;
          }
          AbsorbBlock(g, s);
        }
      }
    }
  }
}

int BridgeFind(ShapeScratch& s, int x) {
  while (s.bridge_parent[static_cast<size_t>(x)] != x) {
    s.bridge_parent[static_cast<size_t>(x)] =
        s.bridge_parent[static_cast<size_t>(
            s.bridge_parent[static_cast<size_t>(x)])];
    x = s.bridge_parent[static_cast<size_t>(x)];
  }
  return x;
}

}  // namespace

ShapeClass ClassifyShape(const Graph& g, ShapeScratch& s,
                         util::StepBudget* girth_budget) {
  ShapeClass out;
  const int n = g.num_nodes();
  if (n == 0) {
    out.chain_set = true;
    out.forest = true;
    out.flower = true;
    out.flower_set = true;
    return out;
  }

  // ---- CSR adjacency snapshot ----
  s.csr_off.resize(static_cast<size_t>(n) + 1);
  s.csr_off[0] = 0;
  for (int v = 0; v < n; ++v) {
    s.csr_off[static_cast<size_t>(v) + 1] =
        s.csr_off[static_cast<size_t>(v)] + g.Degree(v);
  }
  s.csr_adj.resize(static_cast<size_t>(s.csr_off[static_cast<size_t>(n)]));
  for (int v = 0; v < n; ++v) {
    int k = s.csr_off[static_cast<size_t>(v)];
    for (int w : g.Neighbors(v)) s.csr_adj[static_cast<size_t>(k++)] = w;
  }

  // ---- Components and per-component aggregates ----
  s.comp_id.assign(static_cast<size_t>(n), -1);
  s.comp_size.clear();
  s.comp_edges2.clear();
  s.comp_maxdeg.clear();
  int num_comps = 0;
  for (int start = 0; start < n; ++start) {
    if (s.comp_id[static_cast<size_t>(start)] >= 0) continue;
    int c = num_comps++;
    s.comp_size.push_back(0);
    s.comp_edges2.push_back(0);
    s.comp_maxdeg.push_back(0);
    s.stack.clear();
    s.stack.push_back(start);
    s.comp_id[static_cast<size_t>(start)] = c;
    while (!s.stack.empty()) {
      int v = s.stack.back();
      s.stack.pop_back();
      ++s.comp_size[static_cast<size_t>(c)];
      int deg = g.Degree(v);
      s.comp_edges2[static_cast<size_t>(c)] += deg;
      s.comp_maxdeg[static_cast<size_t>(c)] =
          std::max(s.comp_maxdeg[static_cast<size_t>(c)], deg);
      for (int k = s.csr_off[static_cast<size_t>(v)];
           k < s.csr_off[static_cast<size_t>(v) + 1]; ++k) {
        int w = s.csr_adj[static_cast<size_t>(k)];
        if (s.comp_id[static_cast<size_t>(w)] < 0) {
          s.comp_id[static_cast<size_t>(w)] = c;
          s.stack.push_back(w);
        }
      }
    }
  }
  s.comp_loop_nodes.assign(static_cast<size_t>(num_comps), 0);
  s.comp_loop_first.assign(static_cast<size_t>(num_comps), -1);
  for (int v : g.self_loops()) {
    size_t c = static_cast<size_t>(s.comp_id[static_cast<size_t>(v)]);
    if (s.comp_loop_nodes[c]++ == 0) s.comp_loop_first[c] = v;
  }

  bool connected = num_comps <= 1;
  bool acyclic = g.self_loops().empty() &&
                 g.num_proper_edges() == n - num_comps;

  // A forest has no cycle by definition, so the all-pairs girth BFS —
  // the costliest piece on the (dominant) tree-like queries — only runs
  // on cyclic graphs.
  out.girth = acyclic ? 0 : g.Girth(s.girth, girth_budget);
  if (out.girth < 0) {
    out.girth = 0;
    out.abandoned = true;
  }

  out.forest = acyclic;
  out.tree = acyclic && connected;  // n > 0 here
  out.single_edge = g.num_edges() == 1 && n == 2;

  // Chains: connected, acyclic, max degree <= 2, at least one edge.
  auto comp_is_chain = [&s](int c) {
    return s.comp_loop_nodes[static_cast<size_t>(c)] == 0 &&
           s.comp_maxdeg[static_cast<size_t>(c)] <= 2 &&
           s.comp_edges2[static_cast<size_t>(c)] / 2 ==
               s.comp_size[static_cast<size_t>(c)] - 1;
  };
  out.chain = connected && comp_is_chain(s.comp_id[0]);
  out.chain_set = true;
  for (int c = 0; c < num_comps; ++c) {
    if (!comp_is_chain(c)) {
      out.chain_set = false;
      break;
    }
  }

  // Star: a tree with exactly one node having more than two neighbors.
  if (out.tree) {
    int hubs = 0;
    for (int v = 0; v < n; ++v) {
      if (g.Degree(v) > 2) ++hubs;
    }
    out.star = hubs == 1;
  }

  // Cycle: connected, all degrees exactly two, exactly one cycle.
  if (connected && g.self_loops().empty()) {
    bool all_two = true;
    for (int v = 0; v < n; ++v) {
      if (g.Degree(v) != 2) all_two = false;
    }
    out.cycle = all_two && g.num_proper_edges() == n;
  }
  // Degenerate cycle: one node with a self-loop only.
  if (connected && n == 1 && g.num_edges() == 1 && !g.self_loops().empty()) {
    out.cycle = true;
  }

  // ---- Flowers (Definition 6.1) ----
  s.comp_flower_bad.assign(static_cast<size_t>(num_comps), 0);
  s.comp_cand_init.assign(static_cast<size_t>(num_comps), 0);
  if (g.small()) {
    s.comp_cand_bits.assign(static_cast<size_t>(num_comps), 0);
  } else {
    if (s.comp_cand_list.size() < static_cast<size_t>(num_comps)) {
      s.comp_cand_list.resize(static_cast<size_t>(num_comps));
    }
    for (int c = 0; c < num_comps; ++c) {
      s.comp_cand_list[static_cast<size_t>(c)].clear();
    }
  }
  s.bridge_edges.clear();
  BlocksScratch(g, s);

  // The "rest" graph of the flower definition is the graph minus all
  // petal (cyclic-block) edges — exactly the bridge edges. Union-find
  // its components once; a candidate center must sit inside every
  // nontrivial rest-component of its graph component.
  s.bridge_parent.resize(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) s.bridge_parent[static_cast<size_t>(v)] = v;
  for (const auto& [u, v] : s.bridge_edges) {
    s.bridge_parent[static_cast<size_t>(BridgeFind(s, u))] = BridgeFind(s, v);
  }
  s.bcomp_size.assign(static_cast<size_t>(n), 0);
  for (int v = 0; v < n; ++v) ++s.bcomp_size[static_cast<size_t>(BridgeFind(s, v))];
  s.comp_nontrivial_bcomp.assign(static_cast<size_t>(num_comps), -1);
  for (int v = 0; v < n; ++v) {
    int r = BridgeFind(s, v);
    if (s.bcomp_size[static_cast<size_t>(r)] < 2) continue;
    int& t = s.comp_nontrivial_bcomp[static_cast<size_t>(
        s.comp_id[static_cast<size_t>(v)])];
    if (t == -1) {
      t = r;
    } else if (t != r) {
      t = -2;  // several nontrivial rest-components: no center works
    }
  }

  auto candidate_ok = [&s](int c, int x) {
    int nb = s.comp_nontrivial_bcomp[static_cast<size_t>(c)];
    return nb == -1 || (nb >= 0 && BridgeFind(s, x) == nb);
  };
  out.flower_set = true;
  for (int c = 0; c < num_comps; ++c) {
    int loops = s.comp_loop_nodes[static_cast<size_t>(c)];
    bool ok = false;
    if (s.comp_flower_bad[static_cast<size_t>(c)]) {
      // A cyclic block that is no petal: no center can work.
    } else if (!s.comp_cand_init[static_cast<size_t>(c)]) {
      // No cyclic blocks: an acyclic component is a flower (a tree);
      // with exactly one self-loop node, that node is the only
      // candidate center.
      if (loops == 0) {
        ok = true;
      } else if (loops == 1) {
        ok = candidate_ok(c, s.comp_loop_first[static_cast<size_t>(c)]);
      }
    } else if (loops <= 1) {
      if (g.small()) {
        uint64_t cand = s.comp_cand_bits[static_cast<size_t>(c)];
        if (loops == 1) {
          cand &= 1ULL << s.comp_loop_first[static_cast<size_t>(c)];
        }
        while (cand != 0) {
          int x = std::countr_zero(cand);
          cand &= cand - 1;
          if (candidate_ok(c, x)) {
            ok = true;
            break;
          }
        }
      } else {
        const auto& list = s.comp_cand_list[static_cast<size_t>(c)];
        if (loops == 1) {
          int x = s.comp_loop_first[static_cast<size_t>(c)];
          ok = std::binary_search(list.begin(), list.end(), x) &&
               candidate_ok(c, x);
        } else {
          for (int x : list) {
            if (candidate_ok(c, x)) {
              ok = true;
              break;
            }
          }
        }
      }
    }
    if (!ok) {
      out.flower_set = false;
      break;
    }
  }
  out.flower = connected && out.flower_set;
  return out;
}

ShapeClass ClassifyShape(const Graph& g) {
  ShapeScratch scratch;
  return ClassifyShape(g, scratch);
}

}  // namespace sparqlog::graph
