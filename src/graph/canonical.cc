#include "graph/canonical.h"

#include <numeric>
#include <string>

namespace sparqlog::graph {

using rdf::Term;
using sparql::Expr;
using sparql::ExprKind;
using sparql::Pattern;
using sparql::PatternKind;
using sparql::TriplePattern;

namespace {

/// Union-find over term keys for `?x = ?y` collapsing.
class UnionFind {
 public:
  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }
  void Union(int a, int b) { parent_[static_cast<size_t>(Find(a))] = Find(b); }
  int Add() {
    parent_.push_back(static_cast<int>(parent_.size()));
    return static_cast<int>(parent_.size()) - 1;
  }

 private:
  std::vector<int> parent_;
};

/// A unique key for graph nodes: kind-tagged string.
std::string NodeKey(const Term& t) {
  switch (t.kind) {
    case rdf::TermKind::kVariable: return "?" + t.value;
    case rdf::TermKind::kBlank: return "_" + t.value;
    case rdf::TermKind::kIri: return "<" + t.value;
    case rdf::TermKind::kLiteral:
      return "\"" + t.value + "^" + t.datatype + "@" + t.lang;
  }
  return "";
}

void CollectEqualityPairs(const Expr& e,
                          std::vector<std::pair<std::string, std::string>>& out) {
  if (IsVarEqualityFilter(e)) {
    out.emplace_back("?" + e.args[0].term.value, "?" + e.args[1].term.value);
    return;
  }
  // Conjunctions of simple filters distribute; other contexts (||, !)
  // do not force equality, so we only descend through kAnd.
  if (e.kind == ExprKind::kAnd) {
    for (const Expr& a : e.args) CollectEqualityPairs(a, out);
  }
}

}  // namespace

bool IsVarEqualityFilter(const Expr& e) {
  return e.kind == ExprKind::kCompare && e.op == "=" && e.args.size() == 2 &&
         e.args[0].is_variable() && e.args[1].is_variable();
}

void CollectTriplesAndFilters(const Pattern& body,
                              std::vector<const TriplePattern*>& triples,
                              std::vector<const Expr*>& filters) {
  switch (body.kind) {
    case PatternKind::kTriple:
      triples.push_back(&body.triple);
      return;
    case PatternKind::kFilter:
      filters.push_back(&body.expr);
      return;
    case PatternKind::kSubSelect:
      return;
    default:
      break;
  }
  for (const Pattern& c : body.children) {
    CollectTriplesAndFilters(c, triples, filters);
  }
}

CanonicalGraph BuildCanonicalGraph(
    const std::vector<const TriplePattern*>& triples,
    const std::vector<const Expr*>& filters, const CanonicalOptions& options) {
  CanonicalGraph out;
  for (const TriplePattern* tp : triples) {
    if (tp->has_path || tp->predicate.is_variable()) {
      out.valid = false;
      return out;
    }
  }

  UnionFind uf;
  std::map<std::string, int> key_to_uf;
  std::map<int, Term> uf_term;  // representative term per uf class
  auto intern = [&](const Term& t) {
    std::string key = NodeKey(t);
    auto it = key_to_uf.find(key);
    if (it != key_to_uf.end()) return it->second;
    int id = uf.Add();
    key_to_uf.emplace(std::move(key), id);
    uf_term.emplace(id, t);
    return id;
  };

  // Collapse ?x = ?y equality filters first (footnote 20).
  if (options.collapse_equality_filters) {
    std::vector<std::pair<std::string, std::string>> pairs;
    for (const Expr* f : filters) CollectEqualityPairs(*f, pairs);
    for (const auto& [a, b] : pairs) {
      Term ta = Term::Var(a.substr(1));
      Term tb = Term::Var(b.substr(1));
      uf.Union(intern(ta), intern(tb));
    }
  }

  auto keep = [&](const Term& t) {
    return options.include_constants || t.is_unknown();
  };

  // Map union-find classes to graph nodes lazily.
  std::map<int, int> class_to_node;
  auto node_of = [&](const Term& t) {
    int cls = uf.Find(intern(t));
    auto it = class_to_node.find(cls);
    if (it != class_to_node.end()) return it->second;
    int node = out.graph.AddNode();
    out.node_terms.push_back(uf_term.at(cls));
    class_to_node.emplace(cls, node);
    return node;
  };

  for (const TriplePattern* tp : triples) {
    bool ks = keep(tp->subject);
    bool ko = keep(tp->object);
    if (ks && ko) {
      out.graph.AddEdge(node_of(tp->subject), node_of(tp->object));
    } else if (ks) {
      node_of(tp->subject);
    } else if (ko) {
      node_of(tp->object);
    }
  }
  return out;
}

CanonicalGraph BuildCanonicalGraph(const Pattern& body,
                                   const CanonicalOptions& options) {
  std::vector<const TriplePattern*> triples;
  std::vector<const Expr*> filters;
  CollectTriplesAndFilters(body, triples, filters);
  return BuildCanonicalGraph(triples, filters, options);
}

Hypergraph BuildCanonicalHypergraph(
    const std::vector<const TriplePattern*>& triples,
    const std::vector<const Expr*>& filters, const CanonicalOptions& options) {
  UnionFind uf;
  std::map<std::string, int> key_to_uf;
  auto intern = [&](const Term& t) {
    std::string key = NodeKey(t);
    auto it = key_to_uf.find(key);
    if (it != key_to_uf.end()) return it->second;
    int id = uf.Add();
    key_to_uf.emplace(std::move(key), id);
    return id;
  };

  if (options.collapse_equality_filters) {
    std::vector<std::pair<std::string, std::string>> pairs;
    for (const Expr* f : filters) CollectEqualityPairs(*f, pairs);
    for (const auto& [a, b] : pairs) {
      uf.Union(intern(Term::Var(a.substr(1))), intern(Term::Var(b.substr(1))));
    }
  }

  std::map<int, int> class_to_node;
  int next_node = 0;
  auto node_of = [&](const Term& t) {
    int cls = uf.Find(intern(t));
    auto it = class_to_node.find(cls);
    if (it != class_to_node.end()) return it->second;
    class_to_node.emplace(cls, next_node);
    return next_node++;
  };

  Hypergraph hg;
  for (const TriplePattern* tp : triples) {
    std::set<int> edge;
    if (tp->subject.is_unknown()) edge.insert(node_of(tp->subject));
    if (!tp->has_path && tp->predicate.is_unknown()) {
      edge.insert(node_of(tp->predicate));
    }
    if (tp->object.is_unknown()) edge.insert(node_of(tp->object));
    hg.AddEdge(std::move(edge));
  }
  return hg;
}

}  // namespace sparqlog::graph
