#include "graph/canonical.h"

#include <algorithm>
#include <string_view>

namespace sparqlog::graph {

using rdf::Term;
using rdf::TermKind;
using sparql::Expr;
using sparql::ExprKind;
using sparql::Pattern;
using sparql::PatternKind;
using sparql::TriplePattern;

namespace {

// The interner key is the pre-change NodeKey string — kind-tag char +
// value, literals extended with "^datatype@lang" — hashed and compared
// as a virtual byte stream so the string never exists. Keeping the
// exact concatenation semantics (not field-wise comparison) preserves
// the old builder's behavior bit for bit, including its conflation of
// literal field boundaries across the separators.

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

inline uint64_t FnvByte(uint64_t h, unsigned char c) {
  return (h ^ c) * kFnvPrime;
}

inline uint64_t FnvBytes(uint64_t h, std::string_view s) {
  for (unsigned char c : s) h = FnvByte(h, c);
  return h;
}

char KindTag(TermKind kind) {
  switch (kind) {
    case TermKind::kVariable: return '?';
    case TermKind::kBlank: return '_';
    case TermKind::kIri: return '<';
    case TermKind::kLiteral: return '"';
  }
  return '\0';
}

uint64_t NodeKeyHash(const Term& t) {
  uint64_t h = FnvByte(kFnvOffset, static_cast<unsigned char>(KindTag(t.kind)));
  h = FnvBytes(h, t.value);
  if (t.kind == TermKind::kLiteral) {
    h = FnvByte(h, '^');
    h = FnvBytes(h, t.datatype);
    h = FnvByte(h, '@');
    h = FnvBytes(h, t.lang);
  }
  return h;
}

/// Equality of the virtual NodeKey streams (segment-boundary-agnostic,
/// exactly like comparing the concatenated strings).
bool NodeKeyEquals(const Term& a, const Term& b) {
  if (a.kind != b.kind) return false;
  if (a.kind != TermKind::kLiteral) return a.value == b.value;
  if (a.value.size() + a.datatype.size() + a.lang.size() !=
      b.value.size() + b.datatype.size() + b.lang.size()) {
    return false;
  }
  const std::string_view as[5] = {a.value, "^", a.datatype, "@", a.lang};
  const std::string_view bs[5] = {b.value, "^", b.datatype, "@", b.lang};
  size_t ai = 0, aj = 0, bi = 0, bj = 0;
  for (;;) {
    while (ai < 5 && aj == as[ai].size()) {
      ++ai;
      aj = 0;
    }
    while (bi < 5 && bj == bs[bi].size()) {
      ++bi;
      bj = 0;
    }
    if (ai == 5 || bi == 5) return ai == 5 && bi == 5;
    if (as[ai][aj] != bs[bi][bj]) return false;
    ++aj;
    ++bj;
  }
}

void CollectEqualityPairs(
    const Expr& e,
    std::vector<std::pair<const Term*, const Term*>>& out) {
  if (IsVarEqualityFilter(e)) {
    out.emplace_back(&e.args[0].term, &e.args[1].term);
    return;
  }
  // Conjunctions of simple filters distribute; other contexts (||, !)
  // do not force equality, so we only descend through kAnd.
  if (e.kind == ExprKind::kAnd) {
    for (const Expr& a : e.args) CollectEqualityPairs(a, out);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// TermInterner
// ---------------------------------------------------------------------------

int TermInterner::Intern(const Term& t) {
  if (slots_.empty()) slots_.resize(16);
  uint64_t h = NodeKeyHash(t);
  size_t mask = slots_.size() - 1;
  size_t i = static_cast<size_t>(h) & mask;
  while (slots_[i].epoch == epoch_) {
    if (slots_[i].hash == h &&
        NodeKeyEquals(*terms_[static_cast<size_t>(slots_[i].id)], t)) {
      return slots_[i].id;
    }
    i = (i + 1) & mask;
  }
  int id = static_cast<int>(terms_.size());
  terms_.push_back(&t);
  slots_[i].hash = h;
  slots_[i].epoch = epoch_;
  slots_[i].id = id;
  if ((terms_.size() + 1) * 4 > slots_.size() * 3) Grow();
  return id;
}

void TermInterner::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  size_t mask = slots_.size() - 1;
  for (const Slot& s : old) {
    if (s.epoch != epoch_) continue;
    size_t i = static_cast<size_t>(s.hash) & mask;
    while (slots_[i].epoch == epoch_) i = (i + 1) & mask;
    slots_[i] = s;
  }
}

void TermInterner::Clear() {
  terms_.clear();
  // Bumping the epoch invalidates every slot in O(1); on the (rare)
  // wraparound, really wipe the table so stale epochs cannot alias.
  if (++epoch_ == 0) {
    std::fill(slots_.begin(), slots_.end(), Slot{});
    epoch_ = 1;
  }
}

// ---------------------------------------------------------------------------
// CanonicalScratch
// ---------------------------------------------------------------------------

void CanonicalScratch::Clear() {
  interner.Clear();
  uf_parent.clear();
  class_to_node.clear();
  eq_pairs.clear();
}

int CanonicalScratch::UfAdd() {
  uf_parent.push_back(static_cast<int>(uf_parent.size()));
  return static_cast<int>(uf_parent.size()) - 1;
}

int CanonicalScratch::UfFind(int x) {
  while (uf_parent[static_cast<size_t>(x)] != x) {
    uf_parent[static_cast<size_t>(x)] =
        uf_parent[static_cast<size_t>(uf_parent[static_cast<size_t>(x)])];
    x = uf_parent[static_cast<size_t>(x)];
  }
  return x;
}

// ---------------------------------------------------------------------------
// Canonical graph
// ---------------------------------------------------------------------------

bool IsVarEqualityFilter(const Expr& e) {
  return e.kind == ExprKind::kCompare && e.op == "=" && e.args.size() == 2 &&
         e.args[0].is_variable() && e.args[1].is_variable();
}

void CollectTriplesAndFilters(const Pattern& body,
                              std::vector<const TriplePattern*>& triples,
                              std::vector<const Expr*>& filters) {
  switch (body.kind) {
    case PatternKind::kTriple:
      triples.push_back(&body.triple);
      return;
    case PatternKind::kFilter:
      filters.push_back(&body.expr);
      return;
    case PatternKind::kSubSelect:
      return;
    default:
      break;
  }
  for (const Pattern& c : body.children) {
    CollectTriplesAndFilters(c, triples, filters);
  }
}

void BuildCanonicalGraph(const std::vector<const TriplePattern*>& triples,
                         const std::vector<const Expr*>& filters,
                         const CanonicalOptions& options,
                         CanonicalScratch& scratch, CanonicalGraph& out) {
  out.graph.Reset(0);
  out.node_terms.clear();
  out.owned_terms.clear();
  out.valid = true;
  for (const TriplePattern* tp : triples) {
    if (tp->has_path || tp->predicate.is_variable()) {
      out.valid = false;
      return;
    }
  }

  scratch.Clear();
  // Interner ids and union-find elements are allocated in lockstep, so
  // an interned id doubles as its union-find element.
  auto intern = [&scratch](const Term& t) {
    int before = scratch.interner.size();
    int id = scratch.interner.Intern(t);
    if (id == before) scratch.UfAdd();
    return id;
  };

  // Collapse ?x = ?y equality filters first (footnote 20).
  if (options.collapse_equality_filters) {
    for (const Expr* f : filters) CollectEqualityPairs(*f, scratch.eq_pairs);
    for (const auto& [a, b] : scratch.eq_pairs) {
      scratch.UfUnion(intern(*a), intern(*b));
    }
  }

  auto keep = [&options](const Term& t) {
    return options.include_constants || t.is_unknown();
  };

  // Map union-find classes to graph nodes lazily; the class
  // representative's first-seen term names the node.
  auto node_of = [&](const Term& t) {
    int cls = scratch.UfFind(intern(t));
    if (static_cast<size_t>(cls) >= scratch.class_to_node.size()) {
      scratch.class_to_node.resize(
          static_cast<size_t>(scratch.interner.size()), -1);
    }
    int node = scratch.class_to_node[static_cast<size_t>(cls)];
    if (node >= 0) return node;
    node = out.graph.AddNode();
    out.node_terms.push_back(scratch.interner.term(cls));
    scratch.class_to_node[static_cast<size_t>(cls)] = node;
    return node;
  };

  for (const TriplePattern* tp : triples) {
    bool ks = keep(tp->subject);
    bool ko = keep(tp->object);
    if (ks && ko) {
      out.graph.AddEdge(node_of(tp->subject), node_of(tp->object));
    } else if (ks) {
      node_of(tp->subject);
    } else if (ko) {
      node_of(tp->object);
    }
  }
}

namespace {

/// Re-points node_terms at owned copies so a value-returning result is
/// self-contained (safe after the query AST is gone).
void OwnTerms(CanonicalGraph& out) {
  out.owned_terms.reserve(out.node_terms.size());
  for (const Term* t : out.node_terms) out.owned_terms.push_back(*t);
  for (size_t i = 0; i < out.node_terms.size(); ++i) {
    out.node_terms[i] = &out.owned_terms[i];
  }
}

}  // namespace

CanonicalGraph BuildCanonicalGraph(
    const std::vector<const TriplePattern*>& triples,
    const std::vector<const Expr*>& filters, const CanonicalOptions& options) {
  CanonicalScratch scratch;
  CanonicalGraph out;
  BuildCanonicalGraph(triples, filters, options, scratch, out);
  OwnTerms(out);
  return out;
}

CanonicalGraph BuildCanonicalGraph(const Pattern& body,
                                   const CanonicalOptions& options) {
  std::vector<const TriplePattern*> triples;
  std::vector<const Expr*> filters;
  CollectTriplesAndFilters(body, triples, filters);
  return BuildCanonicalGraph(triples, filters, options);
}

// ---------------------------------------------------------------------------
// Canonical hypergraph
// ---------------------------------------------------------------------------

void BuildCanonicalHypergraph(const std::vector<const TriplePattern*>& triples,
                              const std::vector<const Expr*>& filters,
                              const CanonicalOptions& options,
                              CanonicalScratch& scratch, Hypergraph& out) {
  out.Reset();
  scratch.Clear();
  auto intern = [&scratch](const Term& t) {
    int before = scratch.interner.size();
    int id = scratch.interner.Intern(t);
    if (id == before) scratch.UfAdd();
    return id;
  };

  if (options.collapse_equality_filters) {
    for (const Expr* f : filters) CollectEqualityPairs(*f, scratch.eq_pairs);
    for (const auto& [a, b] : scratch.eq_pairs) {
      scratch.UfUnion(intern(*a), intern(*b));
    }
  }

  int next_node = 0;
  auto node_of = [&](const Term& t) {
    int cls = scratch.UfFind(intern(t));
    if (static_cast<size_t>(cls) >= scratch.class_to_node.size()) {
      scratch.class_to_node.resize(
          static_cast<size_t>(scratch.interner.size()), -1);
    }
    int node = scratch.class_to_node[static_cast<size_t>(cls)];
    if (node >= 0) return node;
    node = next_node++;
    scratch.class_to_node[static_cast<size_t>(cls)] = node;
    return node;
  };

  for (const TriplePattern* tp : triples) {
    int e[3];
    int count = 0;
    if (tp->subject.is_unknown()) e[count++] = node_of(tp->subject);
    if (!tp->has_path && tp->predicate.is_unknown()) {
      e[count++] = node_of(tp->predicate);
    }
    if (tp->object.is_unknown()) e[count++] = node_of(tp->object);
    // Sort the (at most 3) ids and drop duplicates: set semantics
    // within a hyperedge, like the old std::set-based edge.
    std::sort(e, e + count);
    count = static_cast<int>(std::unique(e, e + count) - e);
    if (count > 0) out.AddEdgeSorted(e, e + count);
  }
}

Hypergraph BuildCanonicalHypergraph(
    const std::vector<const TriplePattern*>& triples,
    const std::vector<const Expr*>& filters, const CanonicalOptions& options) {
  CanonicalScratch scratch;
  Hypergraph out;
  BuildCanonicalHypergraph(triples, filters, options, scratch, out);
  return out;
}

}  // namespace sparqlog::graph
