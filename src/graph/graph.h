#ifndef SPARQLOG_GRAPH_GRAPH_H_
#define SPARQLOG_GRAPH_GRAPH_H_

#include <cstddef>
#include <set>
#include <vector>

namespace sparqlog::graph {

/// A finite undirected graph with set-semantics edges (no multi-edges)
/// and optional self-loops, matching the paper's canonical-graph
/// definition in Section 5 (an edge is a set of one or two nodes).
class Graph {
 public:
  Graph() = default;
  explicit Graph(int num_nodes) : adj_(static_cast<size_t>(num_nodes)) {}

  /// Adds a node, returning its index.
  int AddNode();

  /// Adds the undirected edge {u, v}; u == v adds a self-loop.
  /// Duplicate edges are ignored (set semantics).
  void AddEdge(int u, int v);

  int num_nodes() const { return static_cast<int>(adj_.size()); }
  /// Number of edges, counting self-loops.
  int num_edges() const { return num_edges_; }
  /// Number of edges {u, v} with u != v.
  int num_proper_edges() const {
    return num_edges_ - static_cast<int>(self_loops_.size());
  }

  bool HasEdge(int u, int v) const;
  bool HasSelfLoop(int v) const { return self_loops_.count(v) > 0; }
  const std::set<int>& self_loops() const { return self_loops_; }

  /// Neighbors of v, excluding v itself.
  const std::set<int>& Neighbors(int v) const {
    return adj_[static_cast<size_t>(v)];
  }
  /// Degree of v counting each proper incident edge once (self-loops do
  /// not contribute; shape definitions in Section 6 speak of neighbors).
  int Degree(int v) const {
    return static_cast<int>(adj_[static_cast<size_t>(v)].size());
  }

  /// Connected components as lists of node indices (singletons included).
  std::vector<std::vector<int>> ConnectedComponents() const;

  /// The node-induced subgraph; `index_map` (optional out) maps original
  /// node index -> new index (-1 if removed).
  Graph InducedSubgraph(const std::vector<int>& nodes,
                        std::vector<int>* index_map = nullptr) const;

  /// True iff the graph has no cycle (ignoring self-loops if
  /// `ignore_self_loops`, else a self-loop counts as a cycle).
  bool IsAcyclic(bool ignore_self_loops = false) const;

  /// Length of the shortest cycle; 0 if acyclic. A self-loop is a cycle
  /// of length 1. Runs BFS from every node: O(V * E).
  int Girth() const;

 private:
  std::vector<std::set<int>> adj_;
  std::set<int> self_loops_;
  int num_edges_ = 0;
};

}  // namespace sparqlog::graph

#endif  // SPARQLOG_GRAPH_GRAPH_H_
