#ifndef SPARQLOG_GRAPH_GRAPH_H_
#define SPARQLOG_GRAPH_GRAPH_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/budget.h"

namespace sparqlog::graph {

/// Read-only view over one node's neighbor list, iterated in ascending
/// order. Backed either by a 64-bit adjacency mask (small graphs) or by
/// a sorted int span (large graphs); both iterate identically, so
/// algorithms written against the view are representation-agnostic.
class NeighborView {
 public:
  class iterator {
   public:
    iterator(uint64_t word, const int* ptr) : word_(word), ptr_(ptr) {}
    int operator*() const {
      return ptr_ != nullptr ? *ptr_ : std::countr_zero(word_);
    }
    iterator& operator++() {
      if (ptr_ != nullptr) {
        ++ptr_;
      } else {
        word_ &= word_ - 1;  // clear lowest set bit
      }
      return *this;
    }
    bool operator==(const iterator& o) const {
      return ptr_ == o.ptr_ && word_ == o.word_;
    }
    bool operator!=(const iterator& o) const { return !(*this == o); }

   private:
    uint64_t word_;
    const int* ptr_;
  };

  explicit NeighborView(uint64_t word) : word_(word) {}
  NeighborView(const int* begin, const int* end) : begin_(begin), end_(end) {}

  iterator begin() const {
    return begin_ != nullptr ? iterator(0, begin_) : iterator(word_, nullptr);
  }
  iterator end() const {
    return begin_ != nullptr ? iterator(0, end_) : iterator(0, nullptr);
  }
  int size() const {
    return begin_ != nullptr ? static_cast<int>(end_ - begin_)
                             : std::popcount(word_);
  }
  bool empty() const { return size() == 0; }

 private:
  uint64_t word_ = 0;
  const int* begin_ = nullptr;
  const int* end_ = nullptr;
};

/// A finite undirected graph with set-semantics edges (no multi-edges)
/// and optional self-loops, matching the paper's canonical-graph
/// definition in Section 5 (an edge is a set of one or two nodes).
///
/// Storage is flat: graphs of <= 64 nodes (every query graph the paper
/// measures) keep adjacency as one 64-bit mask per node — O(1) edge
/// insert/test, degree by popcount, and a single reusable buffer so a
/// scratch-held Graph builds queries with zero heap traffic after
/// warmup. Larger graphs spill to sorted per-node vectors with the same
/// observable behavior (ascending neighbor iteration).
class Graph {
 public:
  Graph() = default;
  explicit Graph(int num_nodes) { Reset(num_nodes); }

  /// Clears the graph to `num_nodes` isolated nodes, keeping allocated
  /// buffer capacity (scratch reuse in the per-query hot path).
  void Reset(int num_nodes = 0);

  /// Adds a node, returning its index.
  int AddNode();

  /// Adds the undirected edge {u, v}; u == v adds a self-loop.
  /// Duplicate edges are ignored (set semantics).
  void AddEdge(int u, int v);

  int num_nodes() const { return num_nodes_; }
  /// Number of edges, counting self-loops.
  int num_edges() const { return num_edges_; }
  /// Number of edges {u, v} with u != v.
  int num_proper_edges() const {
    return num_edges_ - static_cast<int>(self_loops_.size());
  }

  bool HasEdge(int u, int v) const;
  bool HasSelfLoop(int v) const;
  /// Nodes carrying a self-loop, ascending.
  const std::vector<int>& self_loops() const { return self_loops_; }

  /// Neighbors of v, ascending, excluding v itself.
  NeighborView Neighbors(int v) const {
    if (small_) return NeighborView(bits_[static_cast<size_t>(v)]);
    const std::vector<int>& a = adj_[static_cast<size_t>(v)];
    return NeighborView(a.data(), a.data() + a.size());
  }
  /// Degree of v counting each proper incident edge once (self-loops do
  /// not contribute; shape definitions in Section 6 speak of neighbors).
  int Degree(int v) const {
    return small_ ? std::popcount(bits_[static_cast<size_t>(v)])
                  : static_cast<int>(adj_[static_cast<size_t>(v)].size());
  }

  /// True iff adjacency is held as 64-bit masks (num_nodes() <= 64).
  bool small() const { return small_; }
  /// The adjacency mask of v; only valid when small().
  uint64_t AdjacencyBits(int v) const { return bits_[static_cast<size_t>(v)]; }

  /// Connected components as lists of node indices (singletons included).
  std::vector<std::vector<int>> ConnectedComponents() const;

  /// The node-induced subgraph; `index_map` (optional out) maps original
  /// node index -> new index (-1 if removed).
  Graph InducedSubgraph(const std::vector<int>& nodes,
                        std::vector<int>* index_map = nullptr) const;

  /// True iff the graph has no cycle (ignoring self-loops if
  /// `ignore_self_loops`, else a self-loop counts as a cycle).
  bool IsAcyclic(bool ignore_self_loops = false) const;

  /// Recycled BFS buffers for Girth (one per analyzer scratch).
  struct GirthScratch {
    std::vector<int> dist, parent, queue;
  };

  /// Length of the shortest cycle; 0 if acyclic. A self-loop is a cycle
  /// of length 1. Runs BFS from every node: O(V * E). The scratch
  /// overload performs no heap allocation after warmup.
  ///
  /// `budget` (optional) charges one step per BFS node expansion; on
  /// exhaustion the search stops and -1 is returned (abandoned — the
  /// caller must not interpret it as a girth).
  int Girth(GirthScratch& scratch, util::StepBudget* budget = nullptr) const;
  int Girth() const;

 private:
  void Spill();  // migrate bits_ -> adj_ when node 65 arrives

  bool small_ = true;
  int num_nodes_ = 0;
  int num_edges_ = 0;
  std::vector<uint64_t> bits_;        // small graphs: adjacency masks
  std::vector<std::vector<int>> adj_; // large graphs: sorted neighbors
  std::vector<int> self_loops_;       // sorted ascending
};

}  // namespace sparqlog::graph

#endif  // SPARQLOG_GRAPH_GRAPH_H_
