#ifndef SPARQLOG_GRAPH_HYPERGRAPH_H_
#define SPARQLOG_GRAPH_HYPERGRAPH_H_

#include <span>
#include <vector>

namespace sparqlog::graph {

/// A finite hypergraph: nodes 0..n-1 and hyperedges as node sets
/// (Section 5 of the paper: nodes are variables/blank nodes of a pattern,
/// one hyperedge per triple pattern).
///
/// Edges live in one flat CSR pool (ascending node ids within each
/// edge), so a scratch-held hypergraph rebuilds per query without any
/// heap traffic after warmup. Duplicate edges are kept (they are
/// harmless for width computations); empty edges are ignored.
class Hypergraph {
 public:
  Hypergraph() = default;

  /// Clears all edges, keeping pool capacity (scratch reuse).
  void Reset();

  /// Adds a hyperedge; nodes are created implicitly. Sorts and
  /// de-duplicates `nodes` (set semantics within the edge).
  void AddEdge(std::vector<int> nodes);

  /// Hot-path form: `[begin, end)` must be strictly ascending.
  void AddEdgeSorted(const int* begin, const int* end);

  int num_nodes() const { return num_nodes_; }
  int num_edges() const { return static_cast<int>(offsets_.size()) - 1; }

  /// Nodes of edge `e`, ascending.
  std::span<const int> edge(int e) const {
    size_t lo = static_cast<size_t>(offsets_[static_cast<size_t>(e)]);
    size_t hi = static_cast<size_t>(offsets_[static_cast<size_t>(e) + 1]);
    return std::span<const int>(pool_.data() + lo, hi - lo);
  }

  /// True iff the hypergraph is alpha-acyclic (GYO reduction succeeds),
  /// which is equivalent to generalized hypertree width <= 1 for
  /// non-trivial hypergraphs.
  bool IsAlphaAcyclic() const;

  /// Connected components of the node set (via shared edges).
  std::vector<std::vector<int>> ConnectedComponents() const;

 private:
  std::vector<int> pool_;
  std::vector<int> offsets_ = {0};
  int num_nodes_ = 0;
};

}  // namespace sparqlog::graph

#endif  // SPARQLOG_GRAPH_HYPERGRAPH_H_
