#ifndef SPARQLOG_GRAPH_HYPERGRAPH_H_
#define SPARQLOG_GRAPH_HYPERGRAPH_H_

#include <set>
#include <vector>

namespace sparqlog::graph {

/// A finite hypergraph: nodes 0..n-1 and hyperedges as node sets
/// (Section 5 of the paper: nodes are variables/blank nodes of a pattern,
/// one hyperedge per triple pattern).
class Hypergraph {
 public:
  Hypergraph() = default;

  /// Adds a hyperedge; nodes are created implicitly. Duplicate edges are
  /// kept (they are harmless for width computations) but empty edges are
  /// ignored.
  void AddEdge(std::set<int> nodes);

  int num_nodes() const { return num_nodes_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const std::vector<std::set<int>>& edges() const { return edges_; }

  /// All edges containing node v.
  std::vector<int> EdgesContaining(int v) const;

  /// True iff the hypergraph is alpha-acyclic (GYO reduction succeeds),
  /// which is equivalent to generalized hypertree width <= 1 for
  /// non-trivial hypergraphs.
  bool IsAlphaAcyclic() const;

  /// Connected components of the node set (via shared edges).
  std::vector<std::vector<int>> ConnectedComponents() const;

 private:
  std::vector<std::set<int>> edges_;
  int num_nodes_ = 0;
};

}  // namespace sparqlog::graph

#endif  // SPARQLOG_GRAPH_HYPERGRAPH_H_
