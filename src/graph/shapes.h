#ifndef SPARQLOG_GRAPH_SHAPES_H_
#define SPARQLOG_GRAPH_SHAPES_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace sparqlog::graph {

/// Shape-membership flags for a canonical graph, matching the cumulative
/// shape analysis of Table 4. Classes nest:
///   single edge ⊆ chain ⊆ chain set ⊆ forest; star ⊆ tree ⊆ forest;
///   cycle ⊆ petal-graph ⊆ flower ⊆ flower set; forest ⊆ flower set.
struct ShapeClass {
  bool single_edge = false;  ///< one edge, two nodes
  bool chain = false;        ///< connected path (Section 5.1)
  bool chain_set = false;    ///< every component a chain
  bool star = false;         ///< tree with exactly one node of degree >= 3
  bool tree = false;         ///< connected and acyclic
  bool forest = false;       ///< acyclic
  bool cycle = false;        ///< single simple cycle
  bool flower = false;       ///< Definition 6.1
  bool flower_set = false;   ///< every component a flower
  int girth = 0;             ///< shortest cycle length; 0 if acyclic
  /// True if the girth BFS ran out of its step budget; `girth` is then
  /// 0 and the query belongs in the abandoned bucket.
  bool abandoned = false;
};

/// Recycled working state for ClassifyShape: a CSR adjacency snapshot,
/// component labels with per-component aggregates, girth BFS buffers,
/// an iterative block (biconnected-component) DFS, and the per-component
/// flower-candidate sets. One instance per analyzer; cleared, not
/// reallocated, between queries.
struct ShapeScratch {
  // CSR adjacency snapshot of the graph under classification.
  std::vector<int> csr_off, csr_adj;
  // Component labeling and per-component aggregates.
  std::vector<int> comp_id;
  std::vector<int> stack;
  std::vector<int> comp_size, comp_edges2, comp_maxdeg;
  std::vector<int> comp_loop_nodes, comp_loop_first;
  // Girth BFS buffers.
  Graph::GirthScratch girth;
  // Iterative Tarjan block decomposition.
  struct Frame {
    int v;
    int parent;
    int it;
    bool skipped;
  };
  std::vector<int> disc, low;
  std::vector<std::pair<int, int>> edge_stack;
  std::vector<Frame> frames;
  std::vector<std::pair<int, int>> block;
  std::vector<int> block_nodes, block_deg;
  std::vector<int> centers_tmp, intersect_tmp;
  // Per-component flower-candidate state.
  std::vector<unsigned char> comp_flower_bad, comp_cand_init;
  std::vector<uint64_t> comp_cand_bits;          // graphs of <= 64 nodes
  std::vector<std::vector<int>> comp_cand_list;  // larger graphs (sorted)
  // Bridge edges (blocks of one edge) and their union-find components:
  // the "rest" graph of the flower definition once petal edges are gone.
  std::vector<std::pair<int, int>> bridge_edges;
  std::vector<int> bridge_parent;
  std::vector<int> bcomp_size;
  std::vector<int> comp_nontrivial_bcomp;  // -1 none, -2 several, else root
};

/// Classifies a canonical graph. Empty graphs (queries with no qualifying
/// edges) report all tree-like flags true except single_edge/chain/star.
/// The scratch overload performs no heap allocation after warmup; the
/// plain overload allocates a scratch per call (tests, examples).
///
/// `girth_budget` (optional) bounds the all-pairs girth BFS — the only
/// super-linear step; on exhaustion the result is marked `abandoned`.
ShapeClass ClassifyShape(const Graph& g, ShapeScratch& scratch,
                         util::StepBudget* girth_budget = nullptr);
ShapeClass ClassifyShape(const Graph& g);

/// True iff `g` (connected, with designated endpoints) is a petal: two
/// nodes s,t joined by >= 2 internally node-disjoint paths. Exposed for
/// tests.
bool IsPetal(const Graph& g);

/// True iff connected graph `g` is a flower with center `x`
/// (Definition 6.1): every cyclic block is a petal attached at x, every
/// self-loop is at x, and all acyclic parts attach to the rest at x only.
bool IsFlowerWithCenter(const Graph& g, int x);

}  // namespace sparqlog::graph

#endif  // SPARQLOG_GRAPH_SHAPES_H_
