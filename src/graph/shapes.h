#ifndef SPARQLOG_GRAPH_SHAPES_H_
#define SPARQLOG_GRAPH_SHAPES_H_

#include "graph/graph.h"

namespace sparqlog::graph {

/// Shape-membership flags for a canonical graph, matching the cumulative
/// shape analysis of Table 4. Classes nest:
///   single edge ⊆ chain ⊆ chain set ⊆ forest; star ⊆ tree ⊆ forest;
///   cycle ⊆ petal-graph ⊆ flower ⊆ flower set; forest ⊆ flower set.
struct ShapeClass {
  bool single_edge = false;  ///< one edge, two nodes
  bool chain = false;        ///< connected path (Section 5.1)
  bool chain_set = false;    ///< every component a chain
  bool star = false;         ///< tree with exactly one node of degree >= 3
  bool tree = false;         ///< connected and acyclic
  bool forest = false;       ///< acyclic
  bool cycle = false;        ///< single simple cycle
  bool flower = false;       ///< Definition 6.1
  bool flower_set = false;   ///< every component a flower
  int girth = 0;             ///< shortest cycle length; 0 if acyclic
};

/// Classifies a canonical graph. Empty graphs (queries with no qualifying
/// edges) report all tree-like flags true except single_edge/chain/star.
ShapeClass ClassifyShape(const Graph& g);

/// True iff `g` (connected, with designated endpoints) is a petal: two
/// nodes s,t joined by >= 2 internally node-disjoint paths. Exposed for
/// tests.
bool IsPetal(const Graph& g);

/// True iff connected graph `g` is a flower with center `x`
/// (Definition 6.1): every cyclic block is a petal attached at x, every
/// self-loop is at x, and all acyclic parts attach to the rest at x only.
bool IsFlowerWithCenter(const Graph& g, int x);

}  // namespace sparqlog::graph

#endif  // SPARQLOG_GRAPH_SHAPES_H_
