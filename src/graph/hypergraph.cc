#include "graph/hypergraph.h"

#include <algorithm>
#include <queue>

namespace sparqlog::graph {

void Hypergraph::AddEdge(std::set<int> nodes) {
  if (nodes.empty()) return;
  num_nodes_ = std::max(num_nodes_, *nodes.rbegin() + 1);
  edges_.push_back(std::move(nodes));
}

std::vector<int> Hypergraph::EdgesContaining(int v) const {
  std::vector<int> out;
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].count(v) > 0) out.push_back(static_cast<int>(i));
  }
  return out;
}

bool Hypergraph::IsAlphaAcyclic() const {
  // GYO reduction: repeatedly (1) delete nodes that occur in exactly one
  // edge, (2) delete edges contained in another remaining edge. The
  // hypergraph is alpha-acyclic iff this empties all edges.
  std::vector<std::set<int>> edges = edges_;
  std::vector<bool> alive(edges.size(), true);
  bool changed = true;
  while (changed) {
    changed = false;
    // Count node occurrences among live edges.
    std::vector<int> occurrences(static_cast<size_t>(num_nodes_), 0);
    for (size_t i = 0; i < edges.size(); ++i) {
      if (!alive[i]) continue;
      for (int v : edges[i]) ++occurrences[static_cast<size_t>(v)];
    }
    // Rule 1: remove nodes occurring in a single edge.
    for (size_t i = 0; i < edges.size(); ++i) {
      if (!alive[i]) continue;
      for (auto it = edges[i].begin(); it != edges[i].end();) {
        if (occurrences[static_cast<size_t>(*it)] == 1) {
          it = edges[i].erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
      if (edges[i].empty()) alive[i] = false;
    }
    // Rule 2: remove edges contained in another live edge.
    for (size_t i = 0; i < edges.size(); ++i) {
      if (!alive[i]) continue;
      for (size_t j = 0; j < edges.size(); ++j) {
        if (i == j || !alive[j]) continue;
        if (std::includes(edges[j].begin(), edges[j].end(),
                          edges[i].begin(), edges[i].end()) &&
            // Break ties between identical edges by index.
            (edges[i] != edges[j] || i > j)) {
          alive[i] = false;
          changed = true;
          break;
        }
      }
    }
  }
  for (size_t i = 0; i < edges.size(); ++i) {
    if (alive[i]) return false;
  }
  return true;
}

std::vector<std::vector<int>> Hypergraph::ConnectedComponents() const {
  std::vector<std::vector<int>> node_edges(static_cast<size_t>(num_nodes_));
  for (size_t i = 0; i < edges_.size(); ++i) {
    for (int v : edges_[i]) {
      node_edges[static_cast<size_t>(v)].push_back(static_cast<int>(i));
    }
  }
  std::vector<std::vector<int>> components;
  std::vector<bool> seen(static_cast<size_t>(num_nodes_), false);
  for (int start = 0; start < num_nodes_; ++start) {
    if (seen[static_cast<size_t>(start)]) continue;
    std::vector<int> comp;
    std::queue<int> frontier;
    frontier.push(start);
    seen[static_cast<size_t>(start)] = true;
    while (!frontier.empty()) {
      int v = frontier.front();
      frontier.pop();
      comp.push_back(v);
      for (int e : node_edges[static_cast<size_t>(v)]) {
        for (int w : edges_[static_cast<size_t>(e)]) {
          if (!seen[static_cast<size_t>(w)]) {
            seen[static_cast<size_t>(w)] = true;
            frontier.push(w);
          }
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    components.push_back(std::move(comp));
  }
  return components;
}

}  // namespace sparqlog::graph
