#include "graph/hypergraph.h"

#include <algorithm>
#include <set>

namespace sparqlog::graph {

void Hypergraph::Reset() {
  pool_.clear();
  offsets_.resize(1);
  offsets_[0] = 0;
  num_nodes_ = 0;
}

void Hypergraph::AddEdge(std::vector<int> nodes) {
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  if (nodes.empty()) return;
  AddEdgeSorted(nodes.data(), nodes.data() + nodes.size());
}

void Hypergraph::AddEdgeSorted(const int* begin, const int* end) {
  if (begin == end) return;
  num_nodes_ = std::max(num_nodes_, *(end - 1) + 1);
  pool_.insert(pool_.end(), begin, end);
  offsets_.push_back(static_cast<int>(pool_.size()));
}

bool Hypergraph::IsAlphaAcyclic() const {
  // GYO reduction: repeatedly (1) delete nodes that occur in exactly one
  // edge, (2) delete edges contained in another remaining edge. The
  // hypergraph is alpha-acyclic iff this empties all edges. Generic
  // (allocating) form — the hot path runs the bitset GYO inside
  // width::GeneralizedHypertreeWidth instead.
  std::vector<std::set<int>> edges(static_cast<size_t>(num_edges()));
  for (int e = 0; e < num_edges(); ++e) {
    auto span = edge(e);
    edges[static_cast<size_t>(e)].insert(span.begin(), span.end());
  }
  std::vector<bool> alive(edges.size(), true);
  bool changed = true;
  while (changed) {
    changed = false;
    // Count node occurrences among live edges.
    std::vector<int> occurrences(static_cast<size_t>(num_nodes_), 0);
    for (size_t i = 0; i < edges.size(); ++i) {
      if (!alive[i]) continue;
      for (int v : edges[i]) ++occurrences[static_cast<size_t>(v)];
    }
    // Rule 1: remove nodes occurring in a single edge.
    for (size_t i = 0; i < edges.size(); ++i) {
      if (!alive[i]) continue;
      for (auto it = edges[i].begin(); it != edges[i].end();) {
        if (occurrences[static_cast<size_t>(*it)] == 1) {
          it = edges[i].erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
      if (edges[i].empty()) alive[i] = false;
    }
    // Rule 2: remove edges contained in another live edge.
    for (size_t i = 0; i < edges.size(); ++i) {
      if (!alive[i]) continue;
      for (size_t j = 0; j < edges.size(); ++j) {
        if (i == j || !alive[j]) continue;
        if (std::includes(edges[j].begin(), edges[j].end(),
                          edges[i].begin(), edges[i].end()) &&
            // Break ties between identical edges by index.
            (edges[i] != edges[j] || i > j)) {
          alive[i] = false;
          changed = true;
          break;
        }
      }
    }
  }
  for (size_t i = 0; i < edges.size(); ++i) {
    if (alive[i]) return false;
  }
  return true;
}

std::vector<std::vector<int>> Hypergraph::ConnectedComponents() const {
  std::vector<std::vector<int>> node_edges(static_cast<size_t>(num_nodes_));
  for (int e = 0; e < num_edges(); ++e) {
    for (int v : edge(e)) {
      node_edges[static_cast<size_t>(v)].push_back(e);
    }
  }
  std::vector<std::vector<int>> components;
  std::vector<bool> seen(static_cast<size_t>(num_nodes_), false);
  std::vector<int> frontier;
  for (int start = 0; start < num_nodes_; ++start) {
    if (seen[static_cast<size_t>(start)]) continue;
    std::vector<int> comp;
    frontier.clear();
    frontier.push_back(start);
    seen[static_cast<size_t>(start)] = true;
    while (!frontier.empty()) {
      int v = frontier.back();
      frontier.pop_back();
      comp.push_back(v);
      for (int e : node_edges[static_cast<size_t>(v)]) {
        for (int w : edge(e)) {
          if (!seen[static_cast<size_t>(w)]) {
            seen[static_cast<size_t>(w)] = true;
            frontier.push_back(w);
          }
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    components.push_back(std::move(comp));
  }
  return components;
}

}  // namespace sparqlog::graph
