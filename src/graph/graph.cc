#include "graph/graph.h"

#include <algorithm>

namespace sparqlog::graph {

namespace {
constexpr int kSmallLimit = 64;
}  // namespace

void Graph::Reset(int num_nodes) {
  num_nodes_ = num_nodes;
  num_edges_ = 0;
  self_loops_.clear();
  small_ = num_nodes <= kSmallLimit;
  if (small_) {
    bits_.assign(static_cast<size_t>(num_nodes), 0);
    adj_.clear();
  } else {
    bits_.clear();
    adj_.resize(static_cast<size_t>(num_nodes));
    for (auto& a : adj_) a.clear();
  }
}

int Graph::AddNode() {
  if (small_ && num_nodes_ == kSmallLimit) Spill();
  ++num_nodes_;
  if (small_) {
    bits_.push_back(0);
  } else {
    adj_.emplace_back();
  }
  return num_nodes_ - 1;
}

void Graph::Spill() {
  adj_.assign(bits_.size(), {});
  for (size_t v = 0; v < bits_.size(); ++v) {
    uint64_t w = bits_[v];
    adj_[v].reserve(static_cast<size_t>(std::popcount(w)));
    while (w != 0) {
      adj_[v].push_back(std::countr_zero(w));
      w &= w - 1;
    }
  }
  bits_.clear();
  small_ = false;
}

void Graph::AddEdge(int u, int v) {
  if (u == v) {
    auto it = std::lower_bound(self_loops_.begin(), self_loops_.end(), v);
    if (it == self_loops_.end() || *it != v) {
      self_loops_.insert(it, v);
      ++num_edges_;
    }
    return;
  }
  if (small_) {
    uint64_t& bu = bits_[static_cast<size_t>(u)];
    if ((bu >> v) & 1) return;
    bu |= 1ULL << v;
    bits_[static_cast<size_t>(v)] |= 1ULL << u;
    ++num_edges_;
    return;
  }
  std::vector<int>& au = adj_[static_cast<size_t>(u)];
  auto it = std::lower_bound(au.begin(), au.end(), v);
  if (it != au.end() && *it == v) return;
  au.insert(it, v);
  std::vector<int>& av = adj_[static_cast<size_t>(v)];
  av.insert(std::lower_bound(av.begin(), av.end(), u), u);
  ++num_edges_;
}

bool Graph::HasEdge(int u, int v) const {
  if (u == v) return HasSelfLoop(v);
  if (small_) return (bits_[static_cast<size_t>(u)] >> v) & 1;
  const std::vector<int>& au = adj_[static_cast<size_t>(u)];
  return std::binary_search(au.begin(), au.end(), v);
}

bool Graph::HasSelfLoop(int v) const {
  return std::binary_search(self_loops_.begin(), self_loops_.end(), v);
}

std::vector<std::vector<int>> Graph::ConnectedComponents() const {
  std::vector<std::vector<int>> components;
  std::vector<bool> seen(static_cast<size_t>(num_nodes_), false);
  std::vector<int> frontier;
  for (int start = 0; start < num_nodes_; ++start) {
    if (seen[static_cast<size_t>(start)]) continue;
    std::vector<int> comp;
    frontier.clear();
    frontier.push_back(start);
    seen[static_cast<size_t>(start)] = true;
    while (!frontier.empty()) {
      int v = frontier.back();
      frontier.pop_back();
      comp.push_back(v);
      for (int w : Neighbors(v)) {
        if (!seen[static_cast<size_t>(w)]) {
          seen[static_cast<size_t>(w)] = true;
          frontier.push_back(w);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    components.push_back(std::move(comp));
  }
  return components;
}

Graph Graph::InducedSubgraph(const std::vector<int>& nodes,
                             std::vector<int>* index_map) const {
  std::vector<int> map(static_cast<size_t>(num_nodes_), -1);
  Graph sub(static_cast<int>(nodes.size()));
  for (size_t i = 0; i < nodes.size(); ++i) {
    map[static_cast<size_t>(nodes[i])] = static_cast<int>(i);
  }
  for (int v : nodes) {
    int nv = map[static_cast<size_t>(v)];
    if (HasSelfLoop(v)) sub.AddEdge(nv, nv);
    for (int w : Neighbors(v)) {
      int nw = map[static_cast<size_t>(w)];
      if (nw >= 0 && nv < nw) sub.AddEdge(nv, nw);
    }
  }
  if (index_map != nullptr) *index_map = std::move(map);
  return sub;
}

bool Graph::IsAcyclic(bool ignore_self_loops) const {
  if (!ignore_self_loops && !self_loops_.empty()) return false;
  // A graph is a forest iff every component has |E| = |V| - 1, i.e.
  // globally |E_proper| = |V| - #components. Count components with a
  // plain DFS over a seen bitmap (no component lists needed).
  std::vector<bool> seen(static_cast<size_t>(num_nodes_), false);
  std::vector<int> frontier;
  int components = 0;
  for (int start = 0; start < num_nodes_; ++start) {
    if (seen[static_cast<size_t>(start)]) continue;
    ++components;
    frontier.clear();
    frontier.push_back(start);
    seen[static_cast<size_t>(start)] = true;
    while (!frontier.empty()) {
      int v = frontier.back();
      frontier.pop_back();
      for (int w : Neighbors(v)) {
        if (!seen[static_cast<size_t>(w)]) {
          seen[static_cast<size_t>(w)] = true;
          frontier.push_back(w);
        }
      }
    }
  }
  return num_proper_edges() == num_nodes_ - components;
}

int Graph::Girth(GirthScratch& s, util::StepBudget* budget) const {
  if (!self_loops_.empty()) return 1;
  int best = 0;
  int n = num_nodes_;
  s.dist.resize(static_cast<size_t>(n));
  s.parent.resize(static_cast<size_t>(n));
  s.queue.resize(static_cast<size_t>(n));
  for (int start = 0; start < n; ++start) {
    // BFS from `start`; a non-tree edge closing at depths d1, d2 yields a
    // cycle of length d1 + d2 + 1 through `start`'s BFS tree.
    std::fill(s.dist.begin(), s.dist.end(), -1);
    std::fill(s.parent.begin(), s.parent.end(), -1);
    size_t head = 0, tail = 0;
    s.dist[static_cast<size_t>(start)] = 0;
    s.queue[tail++] = start;
    while (head < tail) {
      if (budget != nullptr && !budget->Charge()) return -1;
      int v = s.queue[head++];
      for (int w : Neighbors(v)) {
        if (s.dist[static_cast<size_t>(w)] < 0) {
          s.dist[static_cast<size_t>(w)] = s.dist[static_cast<size_t>(v)] + 1;
          s.parent[static_cast<size_t>(w)] = v;
          s.queue[tail++] = w;
        } else if (w != s.parent[static_cast<size_t>(v)]) {
          int len = s.dist[static_cast<size_t>(v)] +
                    s.dist[static_cast<size_t>(w)] + 1;
          if (best == 0 || len < best) best = len;
        }
      }
    }
  }
  return best;
}

int Graph::Girth() const {
  GirthScratch scratch;
  return Girth(scratch);
}

}  // namespace sparqlog::graph
