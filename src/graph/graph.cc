#include "graph/graph.h"

#include <algorithm>
#include <queue>

namespace sparqlog::graph {

int Graph::AddNode() {
  adj_.emplace_back();
  return static_cast<int>(adj_.size()) - 1;
}

void Graph::AddEdge(int u, int v) {
  if (u == v) {
    if (self_loops_.insert(v).second) ++num_edges_;
    return;
  }
  if (adj_[static_cast<size_t>(u)].insert(v).second) {
    adj_[static_cast<size_t>(v)].insert(u);
    ++num_edges_;
  }
}

bool Graph::HasEdge(int u, int v) const {
  if (u == v) return HasSelfLoop(v);
  return adj_[static_cast<size_t>(u)].count(v) > 0;
}

std::vector<std::vector<int>> Graph::ConnectedComponents() const {
  std::vector<std::vector<int>> components;
  std::vector<bool> seen(adj_.size(), false);
  for (int start = 0; start < num_nodes(); ++start) {
    if (seen[static_cast<size_t>(start)]) continue;
    std::vector<int> comp;
    std::queue<int> frontier;
    frontier.push(start);
    seen[static_cast<size_t>(start)] = true;
    while (!frontier.empty()) {
      int v = frontier.front();
      frontier.pop();
      comp.push_back(v);
      for (int w : Neighbors(v)) {
        if (!seen[static_cast<size_t>(w)]) {
          seen[static_cast<size_t>(w)] = true;
          frontier.push(w);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    components.push_back(std::move(comp));
  }
  return components;
}

Graph Graph::InducedSubgraph(const std::vector<int>& nodes,
                             std::vector<int>* index_map) const {
  std::vector<int> map(adj_.size(), -1);
  Graph sub(static_cast<int>(nodes.size()));
  for (size_t i = 0; i < nodes.size(); ++i) {
    map[static_cast<size_t>(nodes[i])] = static_cast<int>(i);
  }
  for (int v : nodes) {
    int nv = map[static_cast<size_t>(v)];
    if (HasSelfLoop(v)) sub.AddEdge(nv, nv);
    for (int w : Neighbors(v)) {
      int nw = map[static_cast<size_t>(w)];
      if (nw >= 0 && nv < nw) sub.AddEdge(nv, nw);
    }
  }
  if (index_map != nullptr) *index_map = std::move(map);
  return sub;
}

bool Graph::IsAcyclic(bool ignore_self_loops) const {
  if (!ignore_self_loops && !self_loops_.empty()) return false;
  // A graph is a forest iff every component has |E| = |V| - 1, i.e.
  // globally |E_proper| = |V| - #components.
  int components = static_cast<int>(ConnectedComponents().size());
  return num_proper_edges() == num_nodes() - components;
}

int Graph::Girth() const {
  if (!self_loops_.empty()) return 1;
  int best = 0;
  int n = num_nodes();
  for (int start = 0; start < n; ++start) {
    // BFS from `start`; a non-tree edge closing at depths d1, d2 yields a
    // cycle of length d1 + d2 + 1 through `start`'s BFS tree.
    std::vector<int> dist(static_cast<size_t>(n), -1);
    std::vector<int> parent(static_cast<size_t>(n), -1);
    std::queue<int> frontier;
    dist[static_cast<size_t>(start)] = 0;
    frontier.push(start);
    while (!frontier.empty()) {
      int v = frontier.front();
      frontier.pop();
      for (int w : Neighbors(v)) {
        if (dist[static_cast<size_t>(w)] < 0) {
          dist[static_cast<size_t>(w)] = dist[static_cast<size_t>(v)] + 1;
          parent[static_cast<size_t>(w)] = v;
          frontier.push(w);
        } else if (w != parent[static_cast<size_t>(v)]) {
          int len = dist[static_cast<size_t>(v)] +
                    dist[static_cast<size_t>(w)] + 1;
          if (best == 0 || len < best) best = len;
        }
      }
    }
  }
  return best;
}

}  // namespace sparqlog::graph
