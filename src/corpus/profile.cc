#include "corpus/profile.h"

#include <cassert>

namespace sparqlog::corpus {

namespace {

/// Convenience builder: triples-histogram weights for buckets
/// 0,1,...,10,11+.
std::array<double, 12> Triples(std::initializer_list<double> weights) {
  std::array<double, 12> out{};
  size_t i = 0;
  for (double w : weights) {
    if (i < out.size()) out[i++] = w;
  }
  return out;
}

}  // namespace

std::vector<DatasetProfile> PaperProfiles() {
  std::vector<DatasetProfile> all;

  {
    DatasetProfile p;
    p.name = "DBpedia9/12";
    p.ns = "http://dbpedia.org/";
    p.total_queries = 28534301;
    p.valid_rate = 0.9496;
    p.unique_rate = 0.4959;
    p.w_select = 0.93; p.w_ask = 0.062; p.w_describe = 0.005;
    p.w_construct = 0.003;
    p.triples_weights = Triples({0.015, 0.70, 0.10, 0.05, 0.03, 0.02, 0.02,
                                 0.015, 0.01, 0.007, 0.005, 0.028});
    p.distinct_rate = 0.18;
    p.avg_triples = 2.38;
    all.push_back(p);
  }
  {
    DatasetProfile p;
    p.name = "DBpedia13";
    p.ns = "http://dbpedia.org/";
    p.total_queries = 5243853;
    p.valid_rate = 0.9191;
    p.unique_rate = 0.5453;
    p.w_select = 0.875; p.w_ask = 0.044; p.w_describe = 0.05;
    p.w_construct = 0.031;
    // DBpedia13 has the fattest tail (up to 21% with 11+ triples).
    p.triples_weights = Triples({0.01, 0.40, 0.12, 0.07, 0.05, 0.04, 0.03,
                                 0.025, 0.02, 0.018, 0.017, 0.21});
    p.distinct_rate = 0.08;
    p.offset_rate = 0.12;
    p.avg_triples = 3.98;
    all.push_back(p);
  }
  {
    DatasetProfile p;
    p.name = "DBpedia14";
    p.ns = "http://dbpedia.org/";
    p.total_queries = 37219788;
    p.valid_rate = 0.9134;
    p.unique_rate = 0.5064;
    p.w_select = 0.90; p.w_ask = 0.054; p.w_describe = 0.036;
    p.w_construct = 0.01;
    p.triples_weights = Triples({0.02, 0.72, 0.10, 0.04, 0.03, 0.02, 0.015,
                                 0.012, 0.01, 0.006, 0.004, 0.023});
    p.distinct_rate = 0.11;
    p.avg_triples = 2.09;
    all.push_back(p);
  }
  {
    DatasetProfile p;
    p.name = "DBpedia15";
    p.ns = "http://dbpedia.org/";
    p.total_queries = 43478986;
    p.valid_rate = 0.9823;
    p.unique_rate = 0.3103;
    p.w_select = 0.815; p.w_ask = 0.115; p.w_describe = 0.05;
    p.w_construct = 0.02;
    p.triples_weights = Triples({0.015, 0.62, 0.11, 0.06, 0.04, 0.03, 0.025,
                                 0.02, 0.015, 0.012, 0.008, 0.045});
    p.distinct_rate = 0.38;
    p.avg_triples = 2.94;
    all.push_back(p);
  }
  {
    DatasetProfile p;
    p.name = "DBpedia16";
    p.ns = "http://dbpedia.org/";
    p.total_queries = 15098176;
    p.valid_rate = 0.9728;
    p.unique_rate = 0.2975;
    p.w_select = 0.62; p.w_ask = 0.0199; p.w_describe = 0.34;
    p.w_construct = 0.0201;
    p.triples_weights = Triples({0.01, 0.42, 0.14, 0.08, 0.06, 0.05, 0.04,
                                 0.03, 0.025, 0.02, 0.015, 0.11});
    p.distinct_rate = 0.08;
    p.avg_triples = 3.78;
    all.push_back(p);
  }
  {
    DatasetProfile p;
    p.name = "LGD13";
    p.ns = "http://linkedgeodata.org/";
    p.total_queries = 1841880;
    p.valid_rate = 0.8219;
    p.unique_rate = 0.2364;
    p.w_select = 0.28; p.w_ask = 0.0101; p.w_describe = 0.0099;
    p.w_construct = 0.70;
    p.triples_weights = Triples({0.01, 0.45, 0.14, 0.09, 0.07, 0.05, 0.04,
                                 0.03, 0.025, 0.02, 0.015, 0.05});
    p.offset_rate = 0.13;
    p.avg_triples = 3.19;
    all.push_back(p);
  }
  {
    DatasetProfile p;
    p.name = "LGD14";
    p.ns = "http://linkedgeodata.org/";
    p.total_queries = 1999961;
    p.valid_rate = 0.9646;
    p.unique_rate = 0.3259;
    p.w_select = 0.92; p.w_ask = 0.0547; p.w_describe = 0.015;
    p.w_construct = 0.0103;
    p.triples_weights = Triples({0.01, 0.50, 0.16, 0.09, 0.06, 0.04, 0.03,
                                 0.025, 0.02, 0.015, 0.01, 0.04});
    p.limit_rate = 0.41;
    p.offset_rate = 0.38;
    p.filter_rate = 0.61;
    p.count_rate = 0.31;
    p.avg_triples = 2.65;
    all.push_back(p);
  }
  {
    DatasetProfile p;
    p.name = "BioP13";
    p.ns = "http://bioportal.bioontology.org/";
    p.total_queries = 4627271;
    p.valid_rate = 0.9994;
    p.unique_rate = 0.1487;
    p.w_select = 0.97; p.w_ask = 0.03; p.w_describe = 0.0;
    p.w_construct = 0.0;
    // Almost exclusively 0-2 triples (Figure 1), Avg#T = 1.16.
    p.triples_weights = Triples({0.05, 0.78, 0.14, 0.02, 0.007, 0.002,
                                 0.001, 0, 0, 0, 0, 0});
    p.distinct_rate = 0.82;
    p.graph_rate = 0.80;
    p.filter_rate = 0.02;
    p.avg_triples = 1.16;
    all.push_back(p);
  }
  {
    DatasetProfile p;
    p.name = "BioP14";
    p.ns = "http://bioportal.bioontology.org/";
    p.total_queries = 26438933;
    p.valid_rate = 0.9987;
    p.unique_rate = 0.0830;
    p.w_select = 0.965; p.w_ask = 0.032; p.w_describe = 0.002;
    p.w_construct = 0.001;
    p.triples_weights = Triples({0.04, 0.68, 0.20, 0.05, 0.02, 0.006,
                                 0.003, 0.001, 0, 0, 0, 0});
    p.distinct_rate = 0.69;
    p.graph_rate = 0.40;
    p.filter_rate = 0.03;
    p.avg_triples = 1.42;
    all.push_back(p);
  }
  {
    DatasetProfile p;
    p.name = "BioMed13";
    p.ns = "http://openbiomed.org/";
    p.total_queries = 883374;
    p.valid_rate = 0.9994;
    p.unique_rate = 0.0306;
    p.w_select = 0.125; p.w_ask = 0.0037; p.w_describe = 0.848;
    p.w_construct = 0.0242;
    p.triples_weights = Triples({0.01, 0.52, 0.17, 0.08, 0.05, 0.035, 0.025,
                                 0.02, 0.015, 0.01, 0.008, 0.047});
    p.filter_rate = 0.03;
    p.avg_triples = 2.44;
    all.push_back(p);
  }
  {
    DatasetProfile p;
    p.name = "SWDF13";
    p.ns = "http://data.semanticweb.org/";
    p.total_queries = 13762797;
    p.valid_rate = 0.9895;
    p.unique_rate = 0.0903;
    p.w_select = 0.94; p.w_ask = 0.0214; p.w_describe = 0.028;
    p.w_construct = 0.0106;
    p.triples_weights = Triples({0.03, 0.78, 0.10, 0.03, 0.015, 0.01, 0.008,
                                 0.006, 0.005, 0.004, 0.003, 0.006});
    p.limit_rate = 0.47;
    p.avg_triples = 1.51;
    all.push_back(p);
  }
  {
    DatasetProfile p;
    p.name = "BritM14";
    p.ns = "http://collection.britishmuseum.org/";
    p.total_queries = 1523827;
    p.valid_rate = 0.9932;
    p.unique_rate = 0.0893;
    p.w_select = 0.96; p.w_ask = 0.0264; p.w_describe = 0.009;
    p.w_construct = 0.0046;
    // Template-generated queries: few small, many mid-size (Avg 5.47).
    p.triples_weights = Triples({0.005, 0.10, 0.09, 0.10, 0.12, 0.13, 0.12,
                                 0.10, 0.08, 0.06, 0.05, 0.045});
    p.distinct_rate = 0.97;
    p.avg_triples = 5.47;
    all.push_back(p);
  }
  {
    DatasetProfile p;
    p.name = "WikiData17";
    p.ns = "http://www.wikidata.org/";
    p.total_queries = 309;
    p.valid_rate = 0.9968;
    p.unique_rate = 1.0;
    p.w_select = 0.985; p.w_ask = 0.012; p.w_describe = 0.002;
    p.w_construct = 0.001;
    p.triples_weights = Triples({0.01, 0.18, 0.18, 0.15, 0.12, 0.09, 0.07,
                                 0.05, 0.04, 0.03, 0.02, 0.06});
    p.order_by_rate = 0.42;
    p.group_by_rate = 0.30;
    p.subquery_rate = 0.0974;
    p.property_path_rate = 0.2987;
    p.service_rate = 0.70;  // the SERVICE language subquery, Section 4.3
    p.avg_triples = 3.94;
    all.push_back(p);
  }
  return all;
}

const DatasetProfile& ProfileByName(const std::vector<DatasetProfile>& all,
                                    const std::string& name) {
  for (const DatasetProfile& p : all) {
    if (p.name == name) return p;
  }
  assert(false && "unknown dataset profile");
  return all.front();
}

}  // namespace sparqlog::corpus
