#ifndef SPARQLOG_CORPUS_PROFILE_H_
#define SPARQLOG_CORPUS_PROFILE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace sparqlog::corpus {

/// Statistical profile of one query-log source, calibrated to every
/// per-dataset number the paper reports (Table 1, Figure 1, and the
/// per-dataset remarks in Sections 2 and 4). The synthetic generator
/// samples from these marginals; the analysis pipeline then recovers
/// them — the substitution documented in DESIGN.md.
struct DatasetProfile {
  std::string name;
  /// IRI namespace for generated vocabulary.
  std::string ns;

  // ---- Table 1 ----
  uint64_t total_queries = 0;
  double valid_rate = 1.0;   ///< Valid / Total
  double unique_rate = 1.0;  ///< Unique / Valid (duplication factor)

  // ---- Query form mix (weights; Section 4.1 per-dataset remarks) ----
  double w_select = 0.88, w_ask = 0.05, w_describe = 0.045,
         w_construct = 0.025;

  // ---- Figure 1: triples histogram for Select/Ask queries ----
  /// Weights for 0, 1, ..., 10, 11+ triples (the 11+ bucket samples a
  /// heavier tail internally).
  std::array<double, 12> triples_weights{};

  // ---- Solution modifier rates ----
  double distinct_rate = 0.2;
  double limit_rate = 0.17;
  double offset_rate = 0.06;
  double order_by_rate = 0.02;

  // ---- Body operator rates (drives Table 3's marginals) ----
  double filter_rate = 0.42;
  double optional_rate = 0.17;
  double union_rate = 0.17;
  /// Fraction of union queries whose body is *only* the union (the
  /// paper's operator-set table shows pure {U} dominating {A, U}).
  double union_standalone = 0.75;
  double graph_rate = 0.027;
  /// Rate of "kitchen-sink" queries using And, Opt, Union, and Filter
  /// together (Table 3's {A, O, U, F} row: 7.82%).
  double complex_rate = 0.075;

  // ---- Aggregates / grouping ----
  double count_rate = 0.005;
  double group_by_rate = 0.003;
  double other_agg_rate = 0.0002;

  // ---- Other features ----
  double subquery_rate = 0.0054;
  double property_path_rate = 0.0044;
  double bind_rate = 0.004;
  double minus_rate = 0.013;
  double not_exists_rate = 0.016;
  double service_rate = 0.002;
  double values_rate = 0.003;

  // ---- Structure ----
  /// Probability that a multi-triple CQ body is a chain / star / tree /
  /// forest / cycle / flower (normalized internally; Table 4 marginals).
  double shape_chain = 0.90, shape_star = 0.02, shape_tree = 0.05,
         shape_forest = 0.015, shape_cycle = 0.0015, shape_flower = 0.01;
  /// Probability that a triple uses a variable predicate (drives the
  /// hypergraph-only population of Section 6.2).
  double var_predicate_rate = 0.18;
  /// Probability that an endpoint of a triple is a constant.
  double constant_rate = 0.35;
  /// Probability that a Select query projects away some variable.
  double projection_rate = 0.15;
  /// Probability that an Ask query has no variables (concrete triple).
  double ask_concrete_rate = 0.62;
  /// Fraction of Describe queries without a body (Section 2: 97%).
  double describe_nobody_rate = 0.97;
  /// OPTIONAL nesting that violates well-designedness (Section 5.2:
  /// ~1.5% of AOF patterns are not well-designed).
  double non_well_designed_rate = 0.015;
  /// Interface width 2 occurrences (paper: 310 queries overall).
  double wide_interface_rate = 0.00001;

  /// Average number of triples target (Figure 1 bottom row), used by
  /// tests to validate the calibration.
  double avg_triples = 2.0;
};

/// The 13 dataset profiles of Table 1, calibrated to the paper.
std::vector<DatasetProfile> PaperProfiles();

/// Looks up a profile by name; aborts if absent (programming error).
const DatasetProfile& ProfileByName(const std::vector<DatasetProfile>& all,
                                    const std::string& name);

}  // namespace sparqlog::corpus

#endif  // SPARQLOG_CORPUS_PROFILE_H_
