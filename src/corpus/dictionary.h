#ifndef SPARQLOG_CORPUS_DICTIONARY_H_
#define SPARQLOG_CORPUS_DICTIONARY_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sparqlog::corpus {

/// Corpus-wide term dictionary: a bidirectional string <-> dense-id
/// map, generalizing the per-subsystem interning pattern (the parser's
/// TermInterner, the streak stage's StringInterner) to state that
/// crosses process lifetimes. Snapshots store every string exactly once
/// in the dictionary section and refer to it by varint id from the
/// per-shard sections — today that's per-dataset table keys; the
/// out-of-core corpus store (ROADMAP) will put IRI/literal terms here.
///
/// Ids are dense, 0-based, and assigned in first-Intern order, so
/// interning the same terms in the same order yields the same ids —
/// which keeps checkpoint bytes deterministic (shards serialize in
/// index order, their maps in key order).
class TermDictionary {
 public:
  /// Returns the id for `term`, interning it if new.
  uint64_t Intern(std::string_view term);

  /// Id -> term, or nullptr if `id` was never assigned (a corrupt or
  /// mismatched reference — callers treat this as a load failure).
  const std::string* term(uint64_t id) const {
    return id < terms_.size() ? &terms_[id] : nullptr;
  }

  uint64_t size() const { return terms_.size(); }

  /// Appends the dictionary as a snapshot section payload: varint
  /// count, then length-prefixed terms in id order.
  void EncodeTo(std::string& out) const;

  /// Replaces the contents with a decoded payload; false on truncation
  /// or malformed framing (contents are then unspecified).
  bool DecodeFrom(std::string_view& in);

 private:
  std::vector<std::string> terms_;
  std::map<std::string, uint64_t, std::less<>> index_;
};

}  // namespace sparqlog::corpus

#endif  // SPARQLOG_CORPUS_DICTIONARY_H_
