#include "corpus/ingest.h"

#include "sparql/serializer.h"
#include "util/strings.h"

namespace sparqlog::corpus {

uint64_t HashBytes(std::string_view s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

ParsedLine ParseLogLine(sparql::Parser& parser, const std::string& line) {
  ParsedLine out;
  constexpr std::string_view kPrefix = "query=";
  if (line.rfind(kPrefix, 0) != 0) return out;  // non-query noise
  out.is_query = true;
  // The query value runs to the first raw '&' (an encoded '&' inside the
  // query text is "%26", so this only strips trailing CGI parameters
  // such as "&format=json").
  std::string_view value = std::string_view(line).substr(kPrefix.size());
  size_t amp = value.find('&');
  if (amp != std::string_view::npos) value = value.substr(0, amp);
  std::string text = util::PercentDecode(value);
  util::Result<sparql::Query> parsed = parser.Parse(text);
  if (!parsed.ok()) {
    // Malformed: Total but not Valid. Only these entries route by raw
    // line (valid ones route by canonical hash), so hash lazily here.
    out.line_hash = HashBytes(line);
    return out;
  }
  out.valid = true;
  // Duplicate elimination via the canonical serialization: two queries
  // are duplicates iff they parse to the same AST.
  out.canonical_hash = HashBytes(sparql::Serialize(parsed.value()));
  out.query = std::move(parsed).value();
  return out;
}

LogIngestor::LogIngestor(sparql::ParserOptions parser_options)
    : parser_(std::move(parser_options)) {}

bool LogIngestor::ProcessLine(const std::string& line) {
  ParsedLine parsed = ParseLogLine(parser_, line);
  Ingest(parsed);
  return parsed.is_query;
}

void LogIngestor::Ingest(const ParsedLine& parsed) {
  if (!parsed.is_query) return;
  ++stats_.total;
  if (!parsed.valid) return;
  ++stats_.valid;
  const sparql::Query& q = *parsed.query;
  if (valid_sink_) valid_sink_(q);
  if (!seen_hashes_.insert(parsed.canonical_hash).second) return;
  ++stats_.unique;
  if (unique_sink_) unique_sink_(q);
}

void LogIngestor::ProcessLog(const std::vector<std::string>& lines) {
  for (const std::string& line : lines) ProcessLine(line);
}

}  // namespace sparqlog::corpus
