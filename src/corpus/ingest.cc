#include "corpus/ingest.h"

#include <algorithm>
#include <vector>

#include "obs/metrics.h"
#include "sparql/serializer.h"
#include "util/fnv.h"
#include "util/vbyte.h"
#include "util/simd_scan.h"
#include "util/strings.h"

namespace sparqlog::corpus {

uint64_t HashBytes(std::string_view s) { return util::Fnv1aHash(s); }

std::optional<std::string_view> ExtractQueryText(std::string_view line,
                                                 std::string& decode_buf) {
  constexpr std::string_view kPrefix = "query=";
  if (line.substr(0, kPrefix.size()) != kPrefix) return std::nullopt;
  // The query value runs to the first raw '&' (an encoded '&' inside the
  // query text is "%26", so this only strips trailing CGI parameters
  // such as "&format=json").
  std::string_view value = line.substr(kPrefix.size());
  size_t amp = value.find('&');
  if (amp != std::string_view::npos) value = value.substr(0, amp);
  // Fast path: no '%'/'+' escapes means the value IS the query text —
  // parse the slice in place, no decode copy at all. Otherwise decode
  // into the caller's scratch buffer (reused across lines).
  if (util::scan::FindEscape(value, 0) == value.size()) {
    return value;
  }
  decode_buf.clear();
  util::PercentDecodeTo(value, decode_buf);
  return std::string_view(decode_buf);
}

ParsedLine ParseLogLine(sparql::Parser& parser, std::string_view line,
                        std::string& decode_buf) {
  ParsedLine out;
  std::optional<std::string_view> text = ExtractQueryText(line, decode_buf);
  if (!text.has_value()) return out;  // non-query noise
  out.is_query = true;
  util::Result<sparql::Query> parsed = parser.Parse(*text);
  if (!parsed.ok()) {
    // Malformed: Total but not Valid. Only these entries route by raw
    // line (valid ones route by canonical hash), so hash lazily here.
    out.line_hash = HashBytes(line);
    return out;
  }
  out.valid = true;
  // Duplicate elimination via the canonical serialization: two queries
  // are duplicates iff they parse to the same AST. The hash streams the
  // serialization through an FNV-1a sink — bit-identical to hashing the
  // materialized canonical string, without building it.
  out.canonical_hash = sparql::CanonicalHash(parsed.value());
  out.query = std::move(parsed).value();
  return out;
}

ParsedLine ParseLogLine(sparql::Parser& parser, const std::string& line) {
  std::string decode_buf;
  return ParseLogLine(parser, std::string_view(line), decode_buf);
}

ParsedLine ParseLogLine(const sparql::Parser& parser, std::string_view line,
                        ParseScratch& scratch) {
  ParsedLine out;
  std::optional<std::string_view> text =
      ExtractQueryText(line, scratch.decode_buf);
  if (!text.has_value()) return out;  // non-query noise
  out.is_query = true;
  util::Result<sparql::Query> parsed = parser.Parse(*text, scratch.parser);
  if (!parsed.ok()) {
    out.line_hash = HashBytes(line);
    return out;
  }
  out.valid = true;
  out.canonical_hash = sparql::CanonicalHash(parsed.value());
  out.query = std::move(parsed).value();
  return out;
}

LogIngestor::LogIngestor(sparql::ParserOptions parser_options)
    : parser_(std::move(parser_options)) {}

void LogIngestor::set_unique_sink(QuerySink sink) {
  if (!sink) {
    unique_gate_ = nullptr;
    return;
  }
  unique_gate_ = [sink = std::move(sink)](const sparql::Query& q) {
    sink(q);
    return util::Status::OK();
  };
}

void LogIngestor::set_valid_sink(QuerySink sink) {
  if (!sink) {
    valid_gate_ = nullptr;
    return;
  }
  valid_gate_ = [sink = std::move(sink)](const sparql::Query& q) {
    sink(q);
    return util::Status::OK();
  };
}

namespace {

// Hash sets travel sorted and gap-encoded (util/vbyte.h): sorting makes
// the blob deterministic for a given state, and the deltas shave the
// shared high bits off neighboring 64-bit hashes.
void PutHashSet(std::string& out, const std::unordered_set<uint64_t>& set) {
  std::vector<uint64_t> sorted(set.begin(), set.end());
  std::sort(sorted.begin(), sorted.end());
  util::vbyte::PutDeltaSorted(out, sorted);
}

bool GetHashSet(std::string_view& in, std::unordered_set<uint64_t>& set) {
  std::vector<uint64_t> sorted;
  if (!util::vbyte::GetDeltaSorted(in, sorted)) return false;
  set.clear();
  set.reserve(sorted.size());
  set.insert(sorted.begin(), sorted.end());
  return true;
}

}  // namespace

void LogIngestor::SaveState(std::string& out) const {
  util::vbyte::PutVarint(out, stats_.total);
  util::vbyte::PutVarint(out, stats_.valid);
  util::vbyte::PutVarint(out, stats_.unique);
  util::vbyte::PutVarint(out, stats_.malformed);
  util::vbyte::PutVarint(out, stats_.abandoned);
  util::vbyte::PutVarint(out, stats_.quarantined);
  PutHashSet(out, seen_hashes_);
  PutHashSet(out, seen_abandoned_);
}

bool LogIngestor::LoadState(std::string_view& in) {
  return util::vbyte::GetVarint(in, stats_.total) &&
         util::vbyte::GetVarint(in, stats_.valid) &&
         util::vbyte::GetVarint(in, stats_.unique) &&
         util::vbyte::GetVarint(in, stats_.malformed) &&
         util::vbyte::GetVarint(in, stats_.abandoned) &&
         util::vbyte::GetVarint(in, stats_.quarantined) &&
         GetHashSet(in, seen_hashes_) && GetHashSet(in, seen_abandoned_);
}

bool LogIngestor::ProcessLine(const std::string& line) {
  // The previous line's Query (if any) died with the last Ingest call —
  // sinks run synchronously — so its arena storage can be reclaimed.
  scratch_.Reset();
  ParsedLine parsed = ParseLogLine(parser_, std::string_view(line), scratch_);
  Ingest(parsed);
  return parsed.is_query;
}

void LogIngestor::Ingest(const ParsedLine& parsed) {
  if (!parsed.is_query) return;
  ++stats_.total;
  // Shard-stage accounting: every query entry is an item in; valid ones
  // survive. These are pure counter increments (no clock), shared by
  // the serial path and every pipeline shard.
  obs::StageMetrics* shard_metrics = nullptr;
  if constexpr (obs::kTelemetryEnabled) {
    if (telemetry_) {
      shard_metrics = &telemetry_->stage(obs::kStageShard);
      ++shard_metrics->items_in;
    }
  }
  if (parsed.quarantined) {
    ++stats_.quarantined;
    if constexpr (obs::kTelemetryEnabled) {
      if (shard_metrics) ++shard_metrics->quarantined;
    }
    return;
  }
  if (!parsed.valid) {
    ++stats_.malformed;
    if constexpr (obs::kTelemetryEnabled) {
      if (shard_metrics) ++shard_metrics->malformed;
    }
    return;
  }
  const sparql::Query& q = *parsed.query;
  // Valid-corpus gate runs per occurrence: the budget verdict depends
  // only on the canonical query, so duplicates repeat the same verdict.
  if (valid_gate_) {
    if constexpr (obs::kTelemetryEnabled) {
      if (telemetry_) ++telemetry_->stage(obs::kStageAnalysis).items_in;
    }
    util::Status st = valid_gate_(q);
    if (!st.ok()) {
      ++stats_.abandoned;
      seen_abandoned_.insert(parsed.canonical_hash);
      if constexpr (obs::kTelemetryEnabled) {
        if (shard_metrics) ++shard_metrics->abandoned;
      }
      return;
    }
  }
  // Unique-mode bucketing: the first occurrence's gate verdict decides
  // the bucket for the whole duplicate class (all duplicates of one
  // canonical hash route to the same shard, so this is deterministic).
  if (seen_abandoned_.count(parsed.canonical_hash) > 0) {
    ++stats_.abandoned;
    if constexpr (obs::kTelemetryEnabled) {
      if (shard_metrics) ++shard_metrics->abandoned;
    }
    return;
  }
  if (seen_hashes_.count(parsed.canonical_hash) > 0) {
    ++stats_.valid;
    if constexpr (obs::kTelemetryEnabled) {
      if (shard_metrics) ++shard_metrics->items_out;
    }
    return;
  }
  // First occurrence: the unique gate may still abandon it.
  if (unique_gate_) {
    if constexpr (obs::kTelemetryEnabled) {
      if (telemetry_) ++telemetry_->stage(obs::kStageAnalysis).items_in;
    }
    util::Status st = unique_gate_(q);
    if (!st.ok()) {
      ++stats_.abandoned;
      seen_abandoned_.insert(parsed.canonical_hash);
      if constexpr (obs::kTelemetryEnabled) {
        if (shard_metrics) ++shard_metrics->abandoned;
      }
      return;
    }
  }
  seen_hashes_.insert(parsed.canonical_hash);
  ++stats_.valid;
  ++stats_.unique;
  if constexpr (obs::kTelemetryEnabled) {
    if (shard_metrics) ++shard_metrics->items_out;
  }
}

void LogIngestor::ProcessLog(const std::vector<std::string>& lines) {
  for (const std::string& line : lines) ProcessLine(line);
}

}  // namespace sparqlog::corpus
