#include "corpus/ingest.h"

#include "sparql/serializer.h"
#include "util/strings.h"

namespace sparqlog::corpus {

namespace {

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

LogIngestor::LogIngestor(sparql::ParserOptions parser_options)
    : parser_(std::move(parser_options)) {}

bool LogIngestor::ProcessLine(const std::string& line) {
  constexpr std::string_view kPrefix = "query=";
  if (line.rfind(kPrefix, 0) != 0) return false;  // non-query noise
  ++stats_.total;
  std::string text = util::PercentDecode(line.substr(kPrefix.size()));
  util::Result<sparql::Query> parsed = parser_.Parse(text);
  if (!parsed.ok()) return true;
  ++stats_.valid;
  const sparql::Query& q = parsed.value();
  if (valid_sink_) valid_sink_(q);
  // Duplicate elimination via the canonical serialization: two queries
  // are duplicates iff they parse to the same AST.
  uint64_t hash = Fnv1a(sparql::Serialize(q));
  if (!seen_hashes_.insert(hash).second) return true;
  ++stats_.unique;
  if (unique_sink_) unique_sink_(q);
  return true;
}

void LogIngestor::ProcessLog(const std::vector<std::string>& lines) {
  for (const std::string& line : lines) ProcessLine(line);
}

}  // namespace sparqlog::corpus
