#include "corpus/report.h"

#include <algorithm>

#include "graph/canonical.h"
#include "graph/shapes.h"
#include "paths/ctract.h"
#include "width/hypertree.h"
#include "width/treewidth.h"

namespace sparqlog::corpus {

using analysis::ExtractFeatures;
using analysis::ProjectionUse;
using analysis::QueryFeatures;
using fragments::ClassifyFragment;
using fragments::FragmentClass;
using sparql::Pattern;
using sparql::PatternKind;
using sparql::Query;
using sparql::QueryForm;

void CorpusAnalyzer::AddQuery(const Query& q, const std::string& dataset) {
  QueryFeatures f = ExtractFeatures(q);

  // ---- Keywords (Table 2) ----
  ++keywords_.total;
  switch (f.form) {
    case QueryForm::kSelect: ++keywords_.select; break;
    case QueryForm::kAsk: ++keywords_.ask; break;
    case QueryForm::kDescribe: ++keywords_.describe; break;
    case QueryForm::kConstruct: ++keywords_.construct; break;
  }
  if (f.distinct) ++keywords_.distinct;
  if (f.reduced) ++keywords_.reduced;
  if (f.has_limit) ++keywords_.limit;
  if (f.has_offset) ++keywords_.offset;
  if (f.has_order_by) ++keywords_.order_by;
  if (f.has_group_by) ++keywords_.group_by;
  if (f.has_having) ++keywords_.having;
  if (f.filter) ++keywords_.filter;
  if (f.conj) ++keywords_.conj;
  if (f.union_) ++keywords_.union_;
  if (f.optional) ++keywords_.optional;
  if (f.graph) ++keywords_.graph;
  if (f.minus) ++keywords_.minus;
  if (f.not_exists) ++keywords_.not_exists;
  if (f.exists) ++keywords_.exists;
  if (f.agg_count) ++keywords_.count;
  if (f.agg_max) ++keywords_.max;
  if (f.agg_min) ++keywords_.min;
  if (f.agg_avg) ++keywords_.avg;
  if (f.agg_sum) ++keywords_.sum;
  if (f.service) ++keywords_.service;
  if (f.bind) ++keywords_.bind;
  if (f.values) ++keywords_.values;

  // ---- Per-dataset triple statistics (Figure 1) ----
  TripleStats& ts = per_dataset_[dataset];
  ++ts.all_queries;
  ts.triple_sum += static_cast<uint64_t>(f.num_triples);
  ts.max_triples =
      std::max<uint64_t>(ts.max_triples, static_cast<uint64_t>(f.num_triples));
  bool select_ask =
      f.form == QueryForm::kSelect || f.form == QueryForm::kAsk;
  if (select_ask) {
    ++ts.select_ask;
    ts.histogram.Add(f.num_triples);
  }

  // ---- Operator sets (Table 3) ----
  opsets_.Add(f);

  // ---- Projection and subqueries (Section 4.4) ----
  ++projection_.total;
  if (f.subquery) ++projection_.with_subqueries;
  switch (f.projection) {
    case ProjectionUse::kYes:
      ++projection_.with_projection;
      if (f.form == QueryForm::kSelect) ++projection_.select_with_projection;
      if (f.form == QueryForm::kAsk) ++projection_.ask_with_projection;
      break;
    case ProjectionUse::kIndeterminate:
      ++projection_.indeterminate;
      break;
    case ProjectionUse::kNo:
      break;
  }

  // ---- Fragments (Section 5.2, Figure 5) ----
  if (!select_ask || !q.has_body) return;
  ++fragments_.select_ask;
  FragmentClass fc = ClassifyFragment(q);
  if (fc.aof) ++fragments_.aof;
  if (fc.cq) {
    ++fragments_.cq;
    if (fc.num_triples >= 1) fragments_.cq_sizes.Add(fc.num_triples);
  }
  if (fc.cpf) ++fragments_.cpf;
  if (fc.cqf) {
    ++fragments_.cqf;
    if (fc.num_triples >= 1) fragments_.cqf_sizes.Add(fc.num_triples);
  }
  if (fc.well_designed) ++fragments_.well_designed;
  if (fc.cqof) {
    ++fragments_.cqof;
    if (fc.num_triples >= 1) fragments_.cqof_sizes.Add(fc.num_triples);
  }
  if (fc.aof && fc.well_designed && fc.simple_filters &&
      fc.interface_width > 1) {
    ++fragments_.wide_interface;
  }

  // ---- Shapes and widths (Table 4, Section 6) ----
  AnalyzeShapes(q, fc);

  // ---- Property paths (Table 5) ----
  AnalyzePaths(q.where);
}

void CorpusAnalyzer::AnalyzeShapes(const Query& q, const FragmentClass& fc) {
  if (!(fc.cq || fc.cqf || fc.cqof)) return;

  if (fc.var_predicate) {
    // Only the hypergraph is meaningful (Section 6.2).
    if (fc.cqof) {
      std::vector<const sparql::TriplePattern*> triples;
      std::vector<const sparql::Expr*> filters;
      graph::CollectTriplesAndFilters(q.where, triples, filters);
      graph::Hypergraph hg =
          graph::BuildCanonicalHypergraph(triples, filters);
      width::GhwResult ghw = width::GeneralizedHypertreeWidth(hg);
      ++hypergraphs_.total;
      switch (ghw.width) {
        case 0:
        case 1: ++hypergraphs_.ghw1; break;
        case 2: ++hypergraphs_.ghw2; break;
        case 3: ++hypergraphs_.ghw3; break;
        default: ++hypergraphs_.ghw_more; break;
      }
      if (ghw.decomposition_nodes > 10) {
        ++hypergraphs_.decompositions_gt10_nodes;
      }
      if (ghw.decomposition_nodes > 100) {
        ++hypergraphs_.decompositions_gt100_nodes;
      }
    }
    return;
  }

  graph::CanonicalGraph cg = graph::BuildCanonicalGraph(q.where);
  if (!cg.valid) return;
  graph::ShapeClass shape = graph::ClassifyShape(cg.graph);
  width::TreewidthResult tw = width::Treewidth(cg.graph);

  auto record = [&](ShapeCounts& sc) {
    ++sc.total;
    if (shape.single_edge) {
      ++sc.single_edge;
      bool has_constant = false;
      for (const rdf::Term& t : cg.node_terms) {
        if (t.is_constant()) has_constant = true;
      }
      if (has_constant) ++sc.single_edge_with_constants;
    }
    if (shape.chain) ++sc.chain;
    if (shape.chain_set) ++sc.chain_set;
    if (shape.star) ++sc.star;
    if (shape.tree) ++sc.tree;
    if (shape.forest) ++sc.forest;
    if (shape.cycle) ++sc.cycle;
    if (shape.flower) ++sc.flower;
    if (shape.flower_set) ++sc.flower_set;
    if (tw.width <= 2) {
      ++sc.treewidth_le2;
    } else if (tw.width == 3) {
      ++sc.treewidth_3;
    } else {
      ++sc.treewidth_gt3;
    }
    if (shape.girth > 0) ++sc.girth[shape.girth];
  };
  if (fc.cq) record(cq_shapes_);
  if (fc.cqf) record(cqf_shapes_);
  if (fc.cqof) record(cqof_shapes_);
}

void CorpusAnalyzer::AnalyzePaths(const Pattern& p) {
  if (p.kind == PatternKind::kTriple) {
    if (!p.triple.has_path) return;
    const sparql::PathExpr& path = p.triple.path;
    paths::PathClassification pc = paths::ClassifyPath(path);
    if (pc.type == paths::PathType::kPlainLink) return;
    ++paths_.total_paths;
    switch (pc.type) {
      case paths::PathType::kTrivialNegated:
        ++paths_.trivial_negated;
        return;
      case paths::PathType::kTrivialInverse:
        ++paths_.trivial_inverse;
        return;
      default:
        break;
    }
    ++paths_.navigational;
    if (pc.uses_inverse) ++paths_.with_inverse;
    ++paths_.by_type[pc.type];
    if (!paths::IsCtract(path)) ++paths_.not_ctract;
    return;
  }
  if (p.kind == PatternKind::kSubSelect && p.subquery &&
      p.subquery->has_body) {
    AnalyzePaths(p.subquery->where);
    return;
  }
  for (const Pattern& c : p.children) AnalyzePaths(c);
}

}  // namespace sparqlog::corpus
