#include "corpus/report.h"

#include <algorithm>

#include "graph/canonical.h"
#include "graph/shapes.h"
#include "paths/ctract.h"
#include "util/vbyte.h"
#include "width/hypertree.h"
#include "width/treewidth.h"

namespace sparqlog::corpus {

using analysis::ExtractFeatures;
using analysis::ProjectionUse;
using analysis::QueryFeatures;
using fragments::ClassifyFragment;
using fragments::FragmentClass;
using sparql::Pattern;
using sparql::PatternKind;
using sparql::Query;
using sparql::QueryForm;

// ---- Merge() support (pipeline shard merging) ----
// Every aggregate is an order-independent sum (counters, maps of
// counters, histograms) plus one max, so merging disjoint partitions
// reproduces the serial statistics exactly.

void KeywordCounts::Merge(const KeywordCounts& o) {
  total += o.total;
  select += o.select;
  ask += o.ask;
  describe += o.describe;
  construct += o.construct;
  distinct += o.distinct;
  limit += o.limit;
  offset += o.offset;
  order_by += o.order_by;
  reduced += o.reduced;
  filter += o.filter;
  conj += o.conj;
  union_ += o.union_;
  optional += o.optional;
  graph += o.graph;
  not_exists += o.not_exists;
  minus += o.minus;
  exists += o.exists;
  count += o.count;
  max += o.max;
  min += o.min;
  avg += o.avg;
  sum += o.sum;
  group_by += o.group_by;
  having += o.having;
  service += o.service;
  bind += o.bind;
  values += o.values;
}

void TripleStats::Merge(const TripleStats& o) {
  histogram.Merge(o.histogram);
  select_ask += o.select_ask;
  all_queries += o.all_queries;
  triple_sum += o.triple_sum;
  max_triples = std::max(max_triples, o.max_triples);
}

void ProjectionStats::Merge(const ProjectionStats& o) {
  total += o.total;
  with_projection += o.with_projection;
  select_with_projection += o.select_with_projection;
  ask_with_projection += o.ask_with_projection;
  indeterminate += o.indeterminate;
  with_subqueries += o.with_subqueries;
}

void FragmentStats::Merge(const FragmentStats& o) {
  select_ask += o.select_ask;
  aof += o.aof;
  cq += o.cq;
  cpf += o.cpf;
  cqf += o.cqf;
  well_designed += o.well_designed;
  cqof += o.cqof;
  wide_interface += o.wide_interface;
  cq_sizes.Merge(o.cq_sizes);
  cqf_sizes.Merge(o.cqf_sizes);
  cqof_sizes.Merge(o.cqof_sizes);
}

void ShapeCounts::Merge(const ShapeCounts& o) {
  total += o.total;
  single_edge += o.single_edge;
  chain += o.chain;
  chain_set += o.chain_set;
  star += o.star;
  tree += o.tree;
  forest += o.forest;
  cycle += o.cycle;
  flower += o.flower;
  flower_set += o.flower_set;
  treewidth_le2 += o.treewidth_le2;
  treewidth_3 += o.treewidth_3;
  treewidth_gt3 += o.treewidth_gt3;
  for (const auto& [g, n] : o.girth) girth[g] += n;
  single_edge_with_constants += o.single_edge_with_constants;
}

void HypergraphStats::Merge(const HypergraphStats& o) {
  total += o.total;
  ghw1 += o.ghw1;
  ghw2 += o.ghw2;
  ghw3 += o.ghw3;
  ghw_more += o.ghw_more;
  decompositions_gt10_nodes += o.decompositions_gt10_nodes;
  decompositions_gt100_nodes += o.decompositions_gt100_nodes;
}

void PathStats::Merge(const PathStats& o) {
  total_paths += o.total_paths;
  trivial_negated += o.trivial_negated;
  trivial_inverse += o.trivial_inverse;
  navigational += o.navigational;
  with_inverse += o.with_inverse;
  not_ctract += o.not_ctract;
  for (const auto& [type, n] : o.by_type) by_type[type] += n;
}

void CorpusAnalyzer::MergeFrom(const CorpusAnalyzer& other) {
  keywords_.Merge(other.keywords_);
  opsets_.Merge(other.opsets_);
  projection_.Merge(other.projection_);
  fragments_.Merge(other.fragments_);
  cq_shapes_.Merge(other.cq_shapes_);
  cqf_shapes_.Merge(other.cqf_shapes_);
  cqof_shapes_.Merge(other.cqof_shapes_);
  hypergraphs_.Merge(other.hypergraphs_);
  paths_.Merge(other.paths_);
  for (const auto& [dataset, ts] : other.per_dataset_) {
    per_dataset_[dataset].Merge(ts);
  }
}

void CorpusAnalyzer::AddQuery(const Query& q, const std::string& dataset) {
  // Unlimited budgets never time out, so the status is always OK.
  (void)AddQueryBudgeted(q, dataset, AnalysisLimits());
}

util::Status CorpusAnalyzer::AddQueryBudgeted(const Query& q,
                                              const std::string& dataset,
                                              const AnalysisLimits& limits) {
  // ---- Phase 1: compute. Everything that can exhaust a budget runs
  // here, into locals; no aggregate is touched until every kernel
  // finished. A kTimeout return therefore leaves the analyzer exactly
  // as it was — the conservation invariant's "abandoned queries
  // contribute to no statistic".
  QueryFeatures f = ExtractFeatures(q);
  bool select_ask = f.form == QueryForm::kSelect || f.form == QueryForm::kAsk;
  bool classify = select_ask && q.has_body;
  FragmentClass fc;
  ShapeOutcome outcome;
  if (classify) {
    fc = ClassifyFragment(q);
    util::Status st = ComputeShapes(q, fc, limits, outcome);
    if (!st.ok()) return st;
  }

  // ---- Phase 2: commit. Pure counter increments from here on. ----

  // ---- Keywords (Table 2) ----
  ++keywords_.total;
  switch (f.form) {
    case QueryForm::kSelect: ++keywords_.select; break;
    case QueryForm::kAsk: ++keywords_.ask; break;
    case QueryForm::kDescribe: ++keywords_.describe; break;
    case QueryForm::kConstruct: ++keywords_.construct; break;
  }
  if (f.distinct) ++keywords_.distinct;
  if (f.reduced) ++keywords_.reduced;
  if (f.has_limit) ++keywords_.limit;
  if (f.has_offset) ++keywords_.offset;
  if (f.has_order_by) ++keywords_.order_by;
  if (f.has_group_by) ++keywords_.group_by;
  if (f.has_having) ++keywords_.having;
  if (f.filter) ++keywords_.filter;
  if (f.conj) ++keywords_.conj;
  if (f.union_) ++keywords_.union_;
  if (f.optional) ++keywords_.optional;
  if (f.graph) ++keywords_.graph;
  if (f.minus) ++keywords_.minus;
  if (f.not_exists) ++keywords_.not_exists;
  if (f.exists) ++keywords_.exists;
  if (f.agg_count) ++keywords_.count;
  if (f.agg_max) ++keywords_.max;
  if (f.agg_min) ++keywords_.min;
  if (f.agg_avg) ++keywords_.avg;
  if (f.agg_sum) ++keywords_.sum;
  if (f.service) ++keywords_.service;
  if (f.bind) ++keywords_.bind;
  if (f.values) ++keywords_.values;

  // ---- Per-dataset triple statistics (Figure 1) ----
  TripleStats& ts = per_dataset_[dataset];
  ++ts.all_queries;
  ts.triple_sum += static_cast<uint64_t>(f.num_triples);
  ts.max_triples =
      std::max<uint64_t>(ts.max_triples, static_cast<uint64_t>(f.num_triples));
  if (select_ask) {
    ++ts.select_ask;
    ts.histogram.Add(f.num_triples);
  }

  // ---- Operator sets (Table 3) ----
  opsets_.Add(f);

  // ---- Projection and subqueries (Section 4.4) ----
  ++projection_.total;
  if (f.subquery) ++projection_.with_subqueries;
  switch (f.projection) {
    case ProjectionUse::kYes:
      ++projection_.with_projection;
      if (f.form == QueryForm::kSelect) ++projection_.select_with_projection;
      if (f.form == QueryForm::kAsk) ++projection_.ask_with_projection;
      break;
    case ProjectionUse::kIndeterminate:
      ++projection_.indeterminate;
      break;
    case ProjectionUse::kNo:
      break;
  }

  // ---- Fragments (Section 5.2, Figure 5) ----
  if (!classify) return util::Status::OK();
  ++fragments_.select_ask;
  if (fc.aof) ++fragments_.aof;
  if (fc.cq) {
    ++fragments_.cq;
    if (fc.num_triples >= 1) fragments_.cq_sizes.Add(fc.num_triples);
  }
  if (fc.cpf) ++fragments_.cpf;
  if (fc.cqf) {
    ++fragments_.cqf;
    if (fc.num_triples >= 1) fragments_.cqf_sizes.Add(fc.num_triples);
  }
  if (fc.well_designed) ++fragments_.well_designed;
  if (fc.cqof) {
    ++fragments_.cqof;
    if (fc.num_triples >= 1) fragments_.cqof_sizes.Add(fc.num_triples);
  }
  if (fc.aof && fc.well_designed && fc.simple_filters &&
      fc.interface_width > 1) {
    ++fragments_.wide_interface;
  }

  // ---- Shapes and widths (Table 4, Section 6) ----
  CommitShapes(fc, outcome);

  // ---- Property paths (Table 5) ----
  AnalyzePaths(q.where);
  return util::Status::OK();
}

util::Status CorpusAnalyzer::ComputeShapes(const Query& q,
                                           const FragmentClass& fc,
                                           const AnalysisLimits& limits,
                                           ShapeOutcome& out) {
  if (!(fc.cq || fc.cqf || fc.cqof)) return util::Status::OK();

  // All structural analysis runs on the analyzer's recycled scratch:
  // one interner/union-find/graph buffer set per analyzer (one analyzer
  // per pipeline worker), so the per-query cost is compute, not malloc.
  AnalysisScratch& s = scratch_;
  s.triples.clear();
  s.filters.clear();
  graph::CollectTriplesAndFilters(q.where, s.triples, s.filters);

  if (fc.var_predicate) {
    // Only the hypergraph is meaningful (Section 6.2).
    if (fc.cqof) {
      graph::BuildCanonicalHypergraph(s.triples, s.filters,
                                      graph::CanonicalOptions(), s.canonical,
                                      s.hypergraph);
      util::StepBudget ghw_budget(limits.ghw_steps);
      out.ghw = width::GeneralizedHypertreeWidth(
          s.hypergraph, s.ghw, /*max_k=*/4,
          limits.ghw_steps != 0 ? &ghw_budget : nullptr);
      if (out.ghw.abandoned) {
        return util::Status::Timeout("ghw step budget exhausted");
      }
      out.has_hypergraph = true;
    }
    return util::Status::OK();
  }

  graph::BuildCanonicalGraph(s.triples, s.filters, graph::CanonicalOptions(),
                             s.canonical, s.graph);
  const graph::CanonicalGraph& cg = s.graph;
  if (!cg.valid) return util::Status::OK();
  util::StepBudget girth_budget(limits.girth_steps);
  out.shape = graph::ClassifyShape(
      cg.graph, s.shape, limits.girth_steps != 0 ? &girth_budget : nullptr);
  if (out.shape.abandoned) {
    return util::Status::Timeout("girth step budget exhausted");
  }
  util::StepBudget tw_budget(limits.treewidth_steps);
  out.tw = width::Treewidth(
      cg.graph, s.treewidth,
      limits.treewidth_steps != 0 ? &tw_budget : nullptr);
  if (out.tw.abandoned) {
    return util::Status::Timeout("treewidth step budget exhausted");
  }
  if (out.shape.single_edge) {
    for (const rdf::Term* t : cg.node_terms) {
      if (t->is_constant()) out.single_edge_has_constant = true;
    }
  }
  out.has_graph = true;
  return util::Status::OK();
}

void CorpusAnalyzer::CommitShapes(const FragmentClass& fc,
                                  const ShapeOutcome& outcome) {
  if (outcome.has_hypergraph) {
    ++hypergraphs_.total;
    switch (outcome.ghw.width) {
      case 0:
      case 1: ++hypergraphs_.ghw1; break;
      case 2: ++hypergraphs_.ghw2; break;
      case 3: ++hypergraphs_.ghw3; break;
      default: ++hypergraphs_.ghw_more; break;
    }
    if (outcome.ghw.decomposition_nodes > 10) {
      ++hypergraphs_.decompositions_gt10_nodes;
    }
    if (outcome.ghw.decomposition_nodes > 100) {
      ++hypergraphs_.decompositions_gt100_nodes;
    }
    return;
  }
  if (!outcome.has_graph) return;

  const graph::ShapeClass& shape = outcome.shape;
  auto record = [&](ShapeCounts& sc) {
    ++sc.total;
    if (shape.single_edge) {
      ++sc.single_edge;
      if (outcome.single_edge_has_constant) ++sc.single_edge_with_constants;
    }
    if (shape.chain) ++sc.chain;
    if (shape.chain_set) ++sc.chain_set;
    if (shape.star) ++sc.star;
    if (shape.tree) ++sc.tree;
    if (shape.forest) ++sc.forest;
    if (shape.cycle) ++sc.cycle;
    if (shape.flower) ++sc.flower;
    if (shape.flower_set) ++sc.flower_set;
    if (outcome.tw.width <= 2) {
      ++sc.treewidth_le2;
    } else if (outcome.tw.width == 3) {
      ++sc.treewidth_3;
    } else {
      ++sc.treewidth_gt3;
    }
    if (shape.girth > 0) ++sc.girth[shape.girth];
  };
  if (fc.cq) record(cq_shapes_);
  if (fc.cqf) record(cqf_shapes_);
  if (fc.cqof) record(cqof_shapes_);
}

// ---- SaveState/LoadState (snapshot subsystem) ----
// Field order mirrors MergeFrom: every aggregate, in declaration order.
// Maps are dumped in their (ordered) iteration order, histograms as
// max_direct + direct counts + overflow, so identical analyzer states
// serialize to identical bytes. Everything is vbyte-encoded
// (util/vbyte.h) — counter-dominated state compresses to roughly a
// byte per small field — and dataset names travel as dictionary ids.

namespace {

void PutHistogram(std::string& out, const util::BucketHistogram& h) {
  util::vbyte::PutVarint(out, static_cast<uint64_t>(h.max_direct()));
  for (int i = 0; i <= h.max_direct(); ++i) {
    util::vbyte::PutVarint(out, h.Count(i));
  }
  util::vbyte::PutVarint(out, h.Overflow());
}

// Rebuilds additively via Add(bucket, count): `h` must be freshly
// constructed (all-zero) with the same layout as the saved histogram.
bool GetHistogram(std::string_view& in, util::BucketHistogram& h) {
  uint64_t max_direct;
  if (!util::vbyte::GetVarint(in, max_direct)) return false;
  if (max_direct != static_cast<uint64_t>(h.max_direct())) return false;
  for (int i = 0; i <= h.max_direct(); ++i) {
    uint64_t c;
    if (!util::vbyte::GetVarint(in, c)) return false;
    h.Add(i, c);
  }
  uint64_t overflow;
  if (!util::vbyte::GetVarint(in, overflow)) return false;
  h.Add(h.max_direct() + 1, overflow);
  return true;
}

void PutShapeCounts(std::string& out, const ShapeCounts& sc) {
  util::vbyte::PutVarint(out, sc.total);
  util::vbyte::PutVarint(out, sc.single_edge);
  util::vbyte::PutVarint(out, sc.chain);
  util::vbyte::PutVarint(out, sc.chain_set);
  util::vbyte::PutVarint(out, sc.star);
  util::vbyte::PutVarint(out, sc.tree);
  util::vbyte::PutVarint(out, sc.forest);
  util::vbyte::PutVarint(out, sc.cycle);
  util::vbyte::PutVarint(out, sc.flower);
  util::vbyte::PutVarint(out, sc.flower_set);
  util::vbyte::PutVarint(out, sc.treewidth_le2);
  util::vbyte::PutVarint(out, sc.treewidth_3);
  util::vbyte::PutVarint(out, sc.treewidth_gt3);
  util::vbyte::PutVarint(out, sc.single_edge_with_constants);
  util::vbyte::PutVarint(out, sc.girth.size());
  for (const auto& [g, n] : sc.girth) {
    util::vbyte::PutZigzag(out, g);
    util::vbyte::PutVarint(out, n);
  }
}

bool GetShapeCounts(std::string_view& in, ShapeCounts& sc) {
  if (!(util::vbyte::GetVarint(in, sc.total) &&
        util::vbyte::GetVarint(in, sc.single_edge) &&
        util::vbyte::GetVarint(in, sc.chain) &&
        util::vbyte::GetVarint(in, sc.chain_set) &&
        util::vbyte::GetVarint(in, sc.star) &&
        util::vbyte::GetVarint(in, sc.tree) &&
        util::vbyte::GetVarint(in, sc.forest) &&
        util::vbyte::GetVarint(in, sc.cycle) &&
        util::vbyte::GetVarint(in, sc.flower) &&
        util::vbyte::GetVarint(in, sc.flower_set) &&
        util::vbyte::GetVarint(in, sc.treewidth_le2) &&
        util::vbyte::GetVarint(in, sc.treewidth_3) &&
        util::vbyte::GetVarint(in, sc.treewidth_gt3) &&
        util::vbyte::GetVarint(in, sc.single_edge_with_constants))) {
    return false;
  }
  uint64_t girth_entries;
  if (!util::vbyte::GetVarint(in, girth_entries)) return false;
  sc.girth.clear();
  for (uint64_t i = 0; i < girth_entries; ++i) {
    int64_t g;
    uint64_t n;
    if (!util::vbyte::GetZigzag(in, g) || !util::vbyte::GetVarint(in, n)) {
      return false;
    }
    sc.girth[static_cast<int>(g)] = n;
  }
  return true;
}

}  // namespace

void CorpusAnalyzer::SaveState(std::string& out, TermDictionary& dict) const {
  auto PutU64 = [](std::string& o, uint64_t v) { util::vbyte::PutVarint(o, v); };

  const KeywordCounts& k = keywords_;
  PutU64(out, k.total);
  PutU64(out, k.select);
  PutU64(out, k.ask);
  PutU64(out, k.describe);
  PutU64(out, k.construct);
  PutU64(out, k.distinct);
  PutU64(out, k.limit);
  PutU64(out, k.offset);
  PutU64(out, k.order_by);
  PutU64(out, k.reduced);
  PutU64(out, k.filter);
  PutU64(out, k.conj);
  PutU64(out, k.union_);
  PutU64(out, k.optional);
  PutU64(out, k.graph);
  PutU64(out, k.not_exists);
  PutU64(out, k.minus);
  PutU64(out, k.exists);
  PutU64(out, k.count);
  PutU64(out, k.max);
  PutU64(out, k.min);
  PutU64(out, k.avg);
  PutU64(out, k.sum);
  PutU64(out, k.group_by);
  PutU64(out, k.having);
  PutU64(out, k.service);
  PutU64(out, k.bind);
  PutU64(out, k.values);

  for (uint64_t c : opsets_.exact) PutU64(out, c);
  PutU64(out, opsets_.other);
  PutU64(out, opsets_.total);

  PutU64(out, projection_.total);
  PutU64(out, projection_.with_projection);
  PutU64(out, projection_.select_with_projection);
  PutU64(out, projection_.ask_with_projection);
  PutU64(out, projection_.indeterminate);
  PutU64(out, projection_.with_subqueries);

  PutU64(out, fragments_.select_ask);
  PutU64(out, fragments_.aof);
  PutU64(out, fragments_.cq);
  PutU64(out, fragments_.cpf);
  PutU64(out, fragments_.cqf);
  PutU64(out, fragments_.well_designed);
  PutU64(out, fragments_.cqof);
  PutU64(out, fragments_.wide_interface);
  PutHistogram(out, fragments_.cq_sizes);
  PutHistogram(out, fragments_.cqf_sizes);
  PutHistogram(out, fragments_.cqof_sizes);

  PutShapeCounts(out, cq_shapes_);
  PutShapeCounts(out, cqf_shapes_);
  PutShapeCounts(out, cqof_shapes_);

  PutU64(out, hypergraphs_.total);
  PutU64(out, hypergraphs_.ghw1);
  PutU64(out, hypergraphs_.ghw2);
  PutU64(out, hypergraphs_.ghw3);
  PutU64(out, hypergraphs_.ghw_more);
  PutU64(out, hypergraphs_.decompositions_gt10_nodes);
  PutU64(out, hypergraphs_.decompositions_gt100_nodes);

  PutU64(out, paths_.total_paths);
  PutU64(out, paths_.trivial_negated);
  PutU64(out, paths_.trivial_inverse);
  PutU64(out, paths_.navigational);
  PutU64(out, paths_.with_inverse);
  PutU64(out, paths_.not_ctract);
  PutU64(out, paths_.by_type.size());
  for (const auto& [type, n] : paths_.by_type) {
    PutU64(out, static_cast<uint64_t>(type));
    PutU64(out, n);
  }

  PutU64(out, per_dataset_.size());
  for (const auto& [dataset, ts] : per_dataset_) {
    PutU64(out, dict.Intern(dataset));
    PutHistogram(out, ts.histogram);
    PutU64(out, ts.select_ask);
    PutU64(out, ts.all_queries);
    PutU64(out, ts.triple_sum);
    PutU64(out, ts.max_triples);
  }
}

bool CorpusAnalyzer::LoadState(std::string_view& in,
                               const TermDictionary& dict) {
  auto GetU64 = [](std::string_view& i, uint64_t& v) {
    return util::vbyte::GetVarint(i, v);
  };

  KeywordCounts& k = keywords_;
  if (!(GetU64(in, k.total) && GetU64(in, k.select) && GetU64(in, k.ask) &&
        GetU64(in, k.describe) && GetU64(in, k.construct) &&
        GetU64(in, k.distinct) && GetU64(in, k.limit) &&
        GetU64(in, k.offset) && GetU64(in, k.order_by) &&
        GetU64(in, k.reduced) && GetU64(in, k.filter) && GetU64(in, k.conj) &&
        GetU64(in, k.union_) && GetU64(in, k.optional) &&
        GetU64(in, k.graph) && GetU64(in, k.not_exists) &&
        GetU64(in, k.minus) && GetU64(in, k.exists) && GetU64(in, k.count) &&
        GetU64(in, k.max) && GetU64(in, k.min) && GetU64(in, k.avg) &&
        GetU64(in, k.sum) && GetU64(in, k.group_by) &&
        GetU64(in, k.having) && GetU64(in, k.service) && GetU64(in, k.bind) &&
        GetU64(in, k.values))) {
    return false;
  }

  for (uint64_t& c : opsets_.exact) {
    if (!GetU64(in, c)) return false;
  }
  if (!(GetU64(in, opsets_.other) && GetU64(in, opsets_.total))) return false;

  if (!(GetU64(in, projection_.total) &&
        GetU64(in, projection_.with_projection) &&
        GetU64(in, projection_.select_with_projection) &&
        GetU64(in, projection_.ask_with_projection) &&
        GetU64(in, projection_.indeterminate) &&
        GetU64(in, projection_.with_subqueries))) {
    return false;
  }

  if (!(GetU64(in, fragments_.select_ask) && GetU64(in, fragments_.aof) &&
        GetU64(in, fragments_.cq) && GetU64(in, fragments_.cpf) &&
        GetU64(in, fragments_.cqf) && GetU64(in, fragments_.well_designed) &&
        GetU64(in, fragments_.cqof) &&
        GetU64(in, fragments_.wide_interface) &&
        GetHistogram(in, fragments_.cq_sizes) &&
        GetHistogram(in, fragments_.cqf_sizes) &&
        GetHistogram(in, fragments_.cqof_sizes))) {
    return false;
  }

  if (!(GetShapeCounts(in, cq_shapes_) && GetShapeCounts(in, cqf_shapes_) &&
        GetShapeCounts(in, cqof_shapes_))) {
    return false;
  }

  if (!(GetU64(in, hypergraphs_.total) && GetU64(in, hypergraphs_.ghw1) &&
        GetU64(in, hypergraphs_.ghw2) && GetU64(in, hypergraphs_.ghw3) &&
        GetU64(in, hypergraphs_.ghw_more) &&
        GetU64(in, hypergraphs_.decompositions_gt10_nodes) &&
        GetU64(in, hypergraphs_.decompositions_gt100_nodes))) {
    return false;
  }

  if (!(GetU64(in, paths_.total_paths) && GetU64(in, paths_.trivial_negated) &&
        GetU64(in, paths_.trivial_inverse) &&
        GetU64(in, paths_.navigational) && GetU64(in, paths_.with_inverse) &&
        GetU64(in, paths_.not_ctract))) {
    return false;
  }
  uint64_t path_types;
  if (!GetU64(in, path_types)) return false;
  paths_.by_type.clear();
  for (uint64_t i = 0; i < path_types; ++i) {
    uint64_t type, n;
    if (!GetU64(in, type) || !GetU64(in, n)) return false;
    paths_.by_type[static_cast<paths::PathType>(type)] = n;
  }

  uint64_t datasets;
  if (!GetU64(in, datasets)) return false;
  per_dataset_.clear();
  for (uint64_t i = 0; i < datasets; ++i) {
    uint64_t dataset_id;
    if (!GetU64(in, dataset_id)) return false;
    const std::string* dataset = dict.term(dataset_id);
    if (dataset == nullptr) return false;  // id not in this snapshot's dictionary
    TripleStats& ts = per_dataset_[*dataset];
    if (!(GetHistogram(in, ts.histogram) && GetU64(in, ts.select_ask) &&
          GetU64(in, ts.all_queries) && GetU64(in, ts.triple_sum) &&
          GetU64(in, ts.max_triples))) {
      return false;
    }
  }
  return true;
}

void CorpusAnalyzer::AnalyzePaths(const Pattern& p) {
  if (p.kind == PatternKind::kTriple) {
    if (!p.triple.has_path) return;
    const sparql::PathExpr& path = p.triple.path;
    paths::PathClassification pc = paths::ClassifyPath(path);
    if (pc.type == paths::PathType::kPlainLink) return;
    ++paths_.total_paths;
    switch (pc.type) {
      case paths::PathType::kTrivialNegated:
        ++paths_.trivial_negated;
        return;
      case paths::PathType::kTrivialInverse:
        ++paths_.trivial_inverse;
        return;
      default:
        break;
    }
    ++paths_.navigational;
    if (pc.uses_inverse) ++paths_.with_inverse;
    ++paths_.by_type[pc.type];
    if (!paths::IsCtract(path)) ++paths_.not_ctract;
    return;
  }
  if (p.kind == PatternKind::kSubSelect && p.subquery &&
      p.subquery->has_body) {
    AnalyzePaths(p.subquery->where);
    return;
  }
  for (const Pattern& c : p.children) AnalyzePaths(c);
}

}  // namespace sparqlog::corpus
