#include "corpus/report.h"

#include <algorithm>

#include "graph/canonical.h"
#include "graph/shapes.h"
#include "paths/ctract.h"
#include "width/hypertree.h"
#include "width/treewidth.h"

namespace sparqlog::corpus {

using analysis::ExtractFeatures;
using analysis::ProjectionUse;
using analysis::QueryFeatures;
using fragments::ClassifyFragment;
using fragments::FragmentClass;
using sparql::Pattern;
using sparql::PatternKind;
using sparql::Query;
using sparql::QueryForm;

// ---- Merge() support (pipeline shard merging) ----
// Every aggregate is an order-independent sum (counters, maps of
// counters, histograms) plus one max, so merging disjoint partitions
// reproduces the serial statistics exactly.

void KeywordCounts::Merge(const KeywordCounts& o) {
  total += o.total;
  select += o.select;
  ask += o.ask;
  describe += o.describe;
  construct += o.construct;
  distinct += o.distinct;
  limit += o.limit;
  offset += o.offset;
  order_by += o.order_by;
  reduced += o.reduced;
  filter += o.filter;
  conj += o.conj;
  union_ += o.union_;
  optional += o.optional;
  graph += o.graph;
  not_exists += o.not_exists;
  minus += o.minus;
  exists += o.exists;
  count += o.count;
  max += o.max;
  min += o.min;
  avg += o.avg;
  sum += o.sum;
  group_by += o.group_by;
  having += o.having;
  service += o.service;
  bind += o.bind;
  values += o.values;
}

void TripleStats::Merge(const TripleStats& o) {
  histogram.Merge(o.histogram);
  select_ask += o.select_ask;
  all_queries += o.all_queries;
  triple_sum += o.triple_sum;
  max_triples = std::max(max_triples, o.max_triples);
}

void ProjectionStats::Merge(const ProjectionStats& o) {
  total += o.total;
  with_projection += o.with_projection;
  select_with_projection += o.select_with_projection;
  ask_with_projection += o.ask_with_projection;
  indeterminate += o.indeterminate;
  with_subqueries += o.with_subqueries;
}

void FragmentStats::Merge(const FragmentStats& o) {
  select_ask += o.select_ask;
  aof += o.aof;
  cq += o.cq;
  cpf += o.cpf;
  cqf += o.cqf;
  well_designed += o.well_designed;
  cqof += o.cqof;
  wide_interface += o.wide_interface;
  cq_sizes.Merge(o.cq_sizes);
  cqf_sizes.Merge(o.cqf_sizes);
  cqof_sizes.Merge(o.cqof_sizes);
}

void ShapeCounts::Merge(const ShapeCounts& o) {
  total += o.total;
  single_edge += o.single_edge;
  chain += o.chain;
  chain_set += o.chain_set;
  star += o.star;
  tree += o.tree;
  forest += o.forest;
  cycle += o.cycle;
  flower += o.flower;
  flower_set += o.flower_set;
  treewidth_le2 += o.treewidth_le2;
  treewidth_3 += o.treewidth_3;
  treewidth_gt3 += o.treewidth_gt3;
  for (const auto& [g, n] : o.girth) girth[g] += n;
  single_edge_with_constants += o.single_edge_with_constants;
}

void HypergraphStats::Merge(const HypergraphStats& o) {
  total += o.total;
  ghw1 += o.ghw1;
  ghw2 += o.ghw2;
  ghw3 += o.ghw3;
  ghw_more += o.ghw_more;
  decompositions_gt10_nodes += o.decompositions_gt10_nodes;
  decompositions_gt100_nodes += o.decompositions_gt100_nodes;
}

void PathStats::Merge(const PathStats& o) {
  total_paths += o.total_paths;
  trivial_negated += o.trivial_negated;
  trivial_inverse += o.trivial_inverse;
  navigational += o.navigational;
  with_inverse += o.with_inverse;
  not_ctract += o.not_ctract;
  for (const auto& [type, n] : o.by_type) by_type[type] += n;
}

void CorpusAnalyzer::MergeFrom(const CorpusAnalyzer& other) {
  keywords_.Merge(other.keywords_);
  opsets_.Merge(other.opsets_);
  projection_.Merge(other.projection_);
  fragments_.Merge(other.fragments_);
  cq_shapes_.Merge(other.cq_shapes_);
  cqf_shapes_.Merge(other.cqf_shapes_);
  cqof_shapes_.Merge(other.cqof_shapes_);
  hypergraphs_.Merge(other.hypergraphs_);
  paths_.Merge(other.paths_);
  for (const auto& [dataset, ts] : other.per_dataset_) {
    per_dataset_[dataset].Merge(ts);
  }
}

void CorpusAnalyzer::AddQuery(const Query& q, const std::string& dataset) {
  QueryFeatures f = ExtractFeatures(q);

  // ---- Keywords (Table 2) ----
  ++keywords_.total;
  switch (f.form) {
    case QueryForm::kSelect: ++keywords_.select; break;
    case QueryForm::kAsk: ++keywords_.ask; break;
    case QueryForm::kDescribe: ++keywords_.describe; break;
    case QueryForm::kConstruct: ++keywords_.construct; break;
  }
  if (f.distinct) ++keywords_.distinct;
  if (f.reduced) ++keywords_.reduced;
  if (f.has_limit) ++keywords_.limit;
  if (f.has_offset) ++keywords_.offset;
  if (f.has_order_by) ++keywords_.order_by;
  if (f.has_group_by) ++keywords_.group_by;
  if (f.has_having) ++keywords_.having;
  if (f.filter) ++keywords_.filter;
  if (f.conj) ++keywords_.conj;
  if (f.union_) ++keywords_.union_;
  if (f.optional) ++keywords_.optional;
  if (f.graph) ++keywords_.graph;
  if (f.minus) ++keywords_.minus;
  if (f.not_exists) ++keywords_.not_exists;
  if (f.exists) ++keywords_.exists;
  if (f.agg_count) ++keywords_.count;
  if (f.agg_max) ++keywords_.max;
  if (f.agg_min) ++keywords_.min;
  if (f.agg_avg) ++keywords_.avg;
  if (f.agg_sum) ++keywords_.sum;
  if (f.service) ++keywords_.service;
  if (f.bind) ++keywords_.bind;
  if (f.values) ++keywords_.values;

  // ---- Per-dataset triple statistics (Figure 1) ----
  TripleStats& ts = per_dataset_[dataset];
  ++ts.all_queries;
  ts.triple_sum += static_cast<uint64_t>(f.num_triples);
  ts.max_triples =
      std::max<uint64_t>(ts.max_triples, static_cast<uint64_t>(f.num_triples));
  bool select_ask =
      f.form == QueryForm::kSelect || f.form == QueryForm::kAsk;
  if (select_ask) {
    ++ts.select_ask;
    ts.histogram.Add(f.num_triples);
  }

  // ---- Operator sets (Table 3) ----
  opsets_.Add(f);

  // ---- Projection and subqueries (Section 4.4) ----
  ++projection_.total;
  if (f.subquery) ++projection_.with_subqueries;
  switch (f.projection) {
    case ProjectionUse::kYes:
      ++projection_.with_projection;
      if (f.form == QueryForm::kSelect) ++projection_.select_with_projection;
      if (f.form == QueryForm::kAsk) ++projection_.ask_with_projection;
      break;
    case ProjectionUse::kIndeterminate:
      ++projection_.indeterminate;
      break;
    case ProjectionUse::kNo:
      break;
  }

  // ---- Fragments (Section 5.2, Figure 5) ----
  if (!select_ask || !q.has_body) return;
  ++fragments_.select_ask;
  FragmentClass fc = ClassifyFragment(q);
  if (fc.aof) ++fragments_.aof;
  if (fc.cq) {
    ++fragments_.cq;
    if (fc.num_triples >= 1) fragments_.cq_sizes.Add(fc.num_triples);
  }
  if (fc.cpf) ++fragments_.cpf;
  if (fc.cqf) {
    ++fragments_.cqf;
    if (fc.num_triples >= 1) fragments_.cqf_sizes.Add(fc.num_triples);
  }
  if (fc.well_designed) ++fragments_.well_designed;
  if (fc.cqof) {
    ++fragments_.cqof;
    if (fc.num_triples >= 1) fragments_.cqof_sizes.Add(fc.num_triples);
  }
  if (fc.aof && fc.well_designed && fc.simple_filters &&
      fc.interface_width > 1) {
    ++fragments_.wide_interface;
  }

  // ---- Shapes and widths (Table 4, Section 6) ----
  AnalyzeShapes(q, fc);

  // ---- Property paths (Table 5) ----
  AnalyzePaths(q.where);
}

void CorpusAnalyzer::AnalyzeShapes(const Query& q, const FragmentClass& fc) {
  if (!(fc.cq || fc.cqf || fc.cqof)) return;

  // All structural analysis runs on the analyzer's recycled scratch:
  // one interner/union-find/graph buffer set per analyzer (one analyzer
  // per pipeline worker), so the per-query cost is compute, not malloc.
  AnalysisScratch& s = scratch_;
  s.triples.clear();
  s.filters.clear();
  graph::CollectTriplesAndFilters(q.where, s.triples, s.filters);

  if (fc.var_predicate) {
    // Only the hypergraph is meaningful (Section 6.2).
    if (fc.cqof) {
      graph::BuildCanonicalHypergraph(s.triples, s.filters,
                                      graph::CanonicalOptions(), s.canonical,
                                      s.hypergraph);
      width::GhwResult ghw =
          width::GeneralizedHypertreeWidth(s.hypergraph, s.ghw);
      ++hypergraphs_.total;
      switch (ghw.width) {
        case 0:
        case 1: ++hypergraphs_.ghw1; break;
        case 2: ++hypergraphs_.ghw2; break;
        case 3: ++hypergraphs_.ghw3; break;
        default: ++hypergraphs_.ghw_more; break;
      }
      if (ghw.decomposition_nodes > 10) {
        ++hypergraphs_.decompositions_gt10_nodes;
      }
      if (ghw.decomposition_nodes > 100) {
        ++hypergraphs_.decompositions_gt100_nodes;
      }
    }
    return;
  }

  graph::BuildCanonicalGraph(s.triples, s.filters, graph::CanonicalOptions(),
                             s.canonical, s.graph);
  const graph::CanonicalGraph& cg = s.graph;
  if (!cg.valid) return;
  graph::ShapeClass shape = graph::ClassifyShape(cg.graph, s.shape);
  width::TreewidthResult tw = width::Treewidth(cg.graph, s.treewidth);

  auto record = [&](ShapeCounts& sc) {
    ++sc.total;
    if (shape.single_edge) {
      ++sc.single_edge;
      bool has_constant = false;
      for (const rdf::Term* t : cg.node_terms) {
        if (t->is_constant()) has_constant = true;
      }
      if (has_constant) ++sc.single_edge_with_constants;
    }
    if (shape.chain) ++sc.chain;
    if (shape.chain_set) ++sc.chain_set;
    if (shape.star) ++sc.star;
    if (shape.tree) ++sc.tree;
    if (shape.forest) ++sc.forest;
    if (shape.cycle) ++sc.cycle;
    if (shape.flower) ++sc.flower;
    if (shape.flower_set) ++sc.flower_set;
    if (tw.width <= 2) {
      ++sc.treewidth_le2;
    } else if (tw.width == 3) {
      ++sc.treewidth_3;
    } else {
      ++sc.treewidth_gt3;
    }
    if (shape.girth > 0) ++sc.girth[shape.girth];
  };
  if (fc.cq) record(cq_shapes_);
  if (fc.cqf) record(cqf_shapes_);
  if (fc.cqof) record(cqof_shapes_);
}

void CorpusAnalyzer::AnalyzePaths(const Pattern& p) {
  if (p.kind == PatternKind::kTriple) {
    if (!p.triple.has_path) return;
    const sparql::PathExpr& path = p.triple.path;
    paths::PathClassification pc = paths::ClassifyPath(path);
    if (pc.type == paths::PathType::kPlainLink) return;
    ++paths_.total_paths;
    switch (pc.type) {
      case paths::PathType::kTrivialNegated:
        ++paths_.trivial_negated;
        return;
      case paths::PathType::kTrivialInverse:
        ++paths_.trivial_inverse;
        return;
      default:
        break;
    }
    ++paths_.navigational;
    if (pc.uses_inverse) ++paths_.with_inverse;
    ++paths_.by_type[pc.type];
    if (!paths::IsCtract(path)) ++paths_.not_ctract;
    return;
  }
  if (p.kind == PatternKind::kSubSelect && p.subquery &&
      p.subquery->has_body) {
    AnalyzePaths(p.subquery->where);
    return;
  }
  for (const Pattern& c : p.children) AnalyzePaths(c);
}

}  // namespace sparqlog::corpus
