#include "corpus/generator.h"

#include <algorithm>
#include <set>

#include "sparql/serializer.h"
#include "util/strings.h"

namespace sparqlog::corpus {

using rdf::Term;
using sparql::Expr;
using sparql::ExprKind;
using sparql::PathExpr;
using sparql::PathKind;
using sparql::Pattern;
using sparql::PatternKind;
using sparql::Query;
using sparql::QueryForm;
using sparql::SelectItem;
using sparql::TriplePattern;

namespace {

std::string VarName(int i) { return "v" + std::to_string(i); }

}  // namespace

SyntheticLogGenerator::SyntheticLogGenerator(const DatasetProfile& profile,
                                             const GeneratorOptions& options)
    : profile_(profile), options_(options), rng_(options.seed) {}

std::string SyntheticLogGenerator::FreshIri(const std::string& kind) {
  return profile_.ns + kind + "/" + std::to_string(fresh_counter_++);
}

int SyntheticLogGenerator::SampleTripleCount() {
  std::vector<double> weights(profile_.triples_weights.begin(),
                              profile_.triples_weights.end());
  size_t bucket = rng_.Weighted(weights);
  if (bucket < 11) return static_cast<int>(bucket);
  // 11+ tail: geometric decay, occasionally very large (the paper found
  // queries with up to 229 triples).
  int n = 11;
  while (n < 229 && rng_.Chance(0.72)) ++n;
  return n;
}

std::vector<TriplePattern> SyntheticLogGenerator::GenerateTriples(int n) {
  std::vector<TriplePattern> out;
  if (n <= 0) return out;
  // Pool of predicate IRIs: a modest per-dataset vocabulary makes joins
  // on predicates realistic.
  auto pred = [&] {
    return Term::Iri(profile_.ns + "prop/p" +
                     std::to_string(rng_.Below(40)));
  };
  auto var = [&](int i) { return Term::Var(VarName(i)); };
  auto constant = [&] {
    if (rng_.Chance(0.3)) {
      // Fresh literals: accidental constant collisions would create
      // spurious cycles in the canonical graph.
      return Term::Literal("lit" + std::to_string(fresh_counter_++));
    }
    return Term::Iri(FreshIri("resource"));
  };
  auto endpoint = [&](int i) {
    return rng_.Chance(profile_.constant_rate) ? constant() : var(i);
  };

  // Choose a shape for the variable skeleton (Table 4 marginals).
  std::vector<double> shape_weights = {
      profile_.shape_chain, profile_.shape_star,  profile_.shape_tree,
      profile_.shape_forest, profile_.shape_cycle, profile_.shape_flower};
  size_t shape = n >= 2 ? rng_.Weighted(shape_weights) : 0;
  int next_var = 0;
  auto fresh_var = [&] { return next_var++; };

  switch (shape) {
    case 0: {  // chain (single edge when n == 1)
      int v = fresh_var();
      for (int i = 0; i < n; ++i) {
        int w = fresh_var();
        Term s = i == 0 ? endpoint(v) : var(v);
        Term o = i == n - 1 ? endpoint(w) : var(w);
        out.push_back(TriplePattern::Make(s, pred(), o));
        v = w;
      }
      break;
    }
    case 1: {  // star
      int center = fresh_var();
      for (int i = 0; i < n; ++i) {
        out.push_back(
            TriplePattern::Make(var(center), pred(), endpoint(fresh_var())));
      }
      break;
    }
    case 2: {  // random tree
      std::vector<int> nodes = {fresh_var()};
      for (int i = 0; i < n; ++i) {
        int parent = nodes[rng_.Below(nodes.size())];
        int child = fresh_var();
        nodes.push_back(child);
        out.push_back(TriplePattern::Make(var(parent), pred(), var(child)));
      }
      break;
    }
    case 3: {  // forest: two chains
      int first = n / 2 == 0 ? 1 : n / 2;
      int v = fresh_var();
      for (int i = 0; i < first; ++i) {
        int w = fresh_var();
        out.push_back(TriplePattern::Make(var(v), pred(), var(w)));
        v = w;
      }
      v = fresh_var();
      for (int i = first; i < n; ++i) {
        int w = fresh_var();
        out.push_back(TriplePattern::Make(var(v), pred(), var(w)));
        v = w;
      }
      break;
    }
    case 4: {  // cycle
      int start = fresh_var();
      int v = start;
      for (int i = 0; i < n; ++i) {
        int w = i == n - 1 ? start : fresh_var();
        out.push_back(TriplePattern::Make(var(v), pred(), var(w)));
        v = w;
      }
      break;
    }
    case 5: {  // flower: petals + stamens around a center
      int center = fresh_var();
      int remaining = n;
      // One or two petals (cycles through the center) if room.
      while (remaining >= 3 && rng_.Chance(0.6)) {
        int len = 3 + static_cast<int>(rng_.Below(
                          static_cast<uint64_t>(remaining - 2)));
        len = std::min(len, remaining);
        int v = center;
        for (int i = 0; i < len; ++i) {
          int w = i == len - 1 ? center : fresh_var();
          out.push_back(TriplePattern::Make(var(v), pred(), var(w)));
          v = w;
        }
        remaining -= len;
      }
      // Stamens: chains hanging off the center.
      while (remaining > 0) {
        int len = 1 + static_cast<int>(
                          rng_.Below(static_cast<uint64_t>(remaining)));
        int v = center;
        for (int i = 0; i < len; ++i) {
          int w = fresh_var();
          out.push_back(TriplePattern::Make(var(v), pred(), var(w)));
          v = w;
        }
        remaining -= len;
      }
      break;
    }
    default:
      break;
  }

  // Variable predicates on some triples.
  if (!out.empty() && rng_.Chance(profile_.var_predicate_rate)) {
    size_t idx = rng_.Below(out.size());
    out[idx].predicate = Term::Var("p" + std::to_string(idx));
  }
  return out;
}

PathExpr SyntheticLogGenerator::GeneratePath() {
  auto link = [&] {
    PathExpr atom = PathExpr::Link(profile_.ns + "prop/p" +
                                   std::to_string(rng_.Below(40)));
    // 36% of navigational paths use reverse steps somewhere; make some
    // atoms inverse.
    if (rng_.Chance(0.12)) {
      return PathExpr::Unary(PathKind::kInverse, std::move(atom));
    }
    return atom;
  };
  auto alt_of = [&](int k) {
    sparql::AstVector<PathExpr> links;
    for (int i = 0; i < k; ++i) links.push_back(link());
    return PathExpr::Nary(PathKind::kAlt, std::move(links));
  };
  auto seq_of = [&](int k) {
    sparql::AstVector<PathExpr> links;
    for (int i = 0; i < k; ++i) links.push_back(link());
    return PathExpr::Nary(PathKind::kSeq, std::move(links));
  };
  // Weights from Table 5 (plus the trivial !a and ^a forms, which
  // dominate the raw counts).
  static const std::vector<double> kWeights = {
      63039,  // 0: !a
      306,    // 1: ^a
      72009,  // 2: (a1|...|ak)*
      48636,  // 3: a*
      21435,  // 4: a1/.../ak
      19126,  // 5: a*/b
      16053,  // 6: a1|...|ak
      3805,   // 7: a+
      2855,   // 8: a1?/.../ak?
      37,     // 9: a(b1|...|bk)
      31,     // 10: a1/a2?/.../ak?
      15,     // 11: (a/b*)|c
      13,     // 12: a*/b?
      11,     // 13: a/b/c*
      10,     // 14: !(a|b)
      10,     // 15: (a1|...|ak)+
      5,      // 16: (a1|..)(a1|..)
      2,      // 17: a?|b
      2,      // 18: a*|b
      2,      // 19: (a|b)?
      1,      // 20: a|b+
      1,      // 21: a+|b+
      1,      // 22: (a/b)*
  };
  size_t type = rng_.Weighted(kWeights);
  int k = 2 + static_cast<int>(rng_.Below(3));
  auto opt = [&](PathExpr e) {
    return PathExpr::Unary(PathKind::kZeroOrOne, std::move(e));
  };
  auto star = [&](PathExpr e) {
    return PathExpr::Unary(PathKind::kZeroOrMore, std::move(e));
  };
  auto plus = [&](PathExpr e) {
    return PathExpr::Unary(PathKind::kOneOrMore, std::move(e));
  };
  switch (type) {
    case 0:
      return PathExpr::Nary(PathKind::kNegated, {PathExpr::Link(
          profile_.ns + "prop/p" + std::to_string(rng_.Below(40)))});
    case 1:
      return PathExpr::Unary(PathKind::kInverse,
                             PathExpr::Link(profile_.ns + "prop/p" +
                                            std::to_string(rng_.Below(40))));
    case 2: return star(alt_of(k));
    case 3: return star(link());
    case 4: return seq_of(2 + static_cast<int>(rng_.Below(5)));
    case 5:
      return PathExpr::Nary(PathKind::kSeq, {star(link()), link()});
    case 6: return alt_of(2 + static_cast<int>(rng_.Below(5)));
    case 7: return plus(link());
    case 8: {
      sparql::AstVector<PathExpr> parts;
      int kk = 1 + static_cast<int>(rng_.Below(5));
      for (int i = 0; i < kk; ++i) parts.push_back(opt(link()));
      if (kk == 1) return parts[0];
      return PathExpr::Nary(PathKind::kSeq, std::move(parts));
    }
    case 9:
      return PathExpr::Nary(PathKind::kSeq, {link(), alt_of(2)});
    case 10: {
      sparql::AstVector<PathExpr> parts{link()};
      int kk = 1 + static_cast<int>(rng_.Below(3));
      for (int i = 0; i < kk; ++i) parts.push_back(opt(link()));
      return PathExpr::Nary(PathKind::kSeq, std::move(parts));
    }
    case 11:
      return PathExpr::Nary(
          PathKind::kAlt,
          {PathExpr::Nary(PathKind::kSeq, {link(), star(link())}), link()});
    case 12:
      return PathExpr::Nary(PathKind::kSeq, {star(link()), opt(link())});
    case 13:
      return PathExpr::Nary(PathKind::kSeq, {link(), link(), star(link())});
    case 14: {
      sparql::AstVector<PathExpr> members;
      for (int i = 0; i < 2; ++i) {
        members.push_back(PathExpr::Link(profile_.ns + "prop/p" +
                                         std::to_string(rng_.Below(40))));
      }
      return PathExpr::Nary(PathKind::kNegated, std::move(members));
    }
    case 15: return plus(alt_of(2));
    case 16: {
      PathExpr a = alt_of(k);
      PathExpr b = a;
      return PathExpr::Nary(PathKind::kSeq, {std::move(a), std::move(b)});
    }
    case 17:
      return PathExpr::Nary(PathKind::kAlt, {opt(link()), link()});
    case 18:
      return PathExpr::Nary(PathKind::kAlt, {star(link()), link()});
    case 19: return opt(alt_of(2));
    case 20:
      return PathExpr::Nary(PathKind::kAlt, {link(), plus(link())});
    case 21:
      return PathExpr::Nary(PathKind::kAlt, {plus(link()), plus(link())});
    case 22:
      return star(seq_of(2));
    default:
      return link();
  }
}

Query SyntheticLogGenerator::GenerateQueryOfForm(QueryForm form) {
  Query q;
  q.form = form;

  if (form == QueryForm::kDescribe) {
    q.describe_targets.push_back(Term::Iri(FreshIri("resource")));
    if (!rng_.Chance(profile_.describe_nobody_rate)) {
      q.has_body = true;
      sparql::AstVector<Pattern> children;
      for (const TriplePattern& t : GenerateTriples(1)) {
        children.push_back(Pattern::Triple(t));
      }
      q.where = Pattern::Group(std::move(children));
    }
    return q;
  }

  int n = SampleTripleCount();
  bool concrete_ask =
      form == QueryForm::kAsk && rng_.Chance(profile_.ask_concrete_rate);
  std::vector<TriplePattern> triples;
  if (concrete_ask) {
    triples.push_back(TriplePattern::Make(
        Term::Iri(FreshIri("resource")),
        Term::Iri(profile_.ns + "prop/p" + std::to_string(rng_.Below(40))),
        Term::Iri(FreshIri("resource"))));
    n = 1;
  } else {
    triples = GenerateTriples(n);
  }

  // Property paths (replace a random triple's predicate).
  if (!triples.empty() && rng_.Chance(profile_.property_path_rate)) {
    size_t idx = rng_.Below(triples.size());
    triples[idx] = TriplePattern::MakePath(triples[idx].subject,
                                           GeneratePath(),
                                           triples[idx].object);
  }

  sparql::AstVector<Pattern> children;
  std::set<std::string> body_vars;
  for (const TriplePattern& t : triples) t.CollectVariables(body_vars);

  // "Kitchen-sink" queries combine And, Opt, Union, and Filter — the
  // {A, O, U, F} row of Table 3.
  bool complex = !concrete_ask && !body_vars.empty() &&
                 rng_.Chance(profile_.complex_rate);

  // UNION: mostly standalone bodies (pure {U} dominates {A, U} in the
  // paper), otherwise alongside the base triples.
  bool use_union =
      !concrete_ask && (complex || rng_.Chance(profile_.union_rate));
  bool union_standalone = use_union && !complex &&
                          rng_.Chance(profile_.union_standalone);

  // OPTIONAL: move a suffix of the triples into an OPTIONAL block
  // sharing a variable with the mandatory part (well-designed by
  // construction, occasionally violated on purpose).
  size_t optional_from = triples.size();
  bool use_optional =
      !concrete_ask && !union_standalone && !body_vars.empty() &&
      (complex || rng_.Chance(profile_.optional_rate));
  std::vector<TriplePattern> opt_extra;
  if (use_optional) {
    if (triples.size() >= 2) {
      optional_from = 1 + rng_.Below(triples.size() - 1);
    } else {
      // One base triple: generate a fresh optional extension on its
      // first variable.
      std::string shared = *body_vars.begin();
      opt_extra.push_back(TriplePattern::Make(
          Term::Var(shared),
          Term::Iri(profile_.ns + "prop/p" + std::to_string(rng_.Below(40))),
          Term::Var("opt0")));
    }
  }
  if (union_standalone) {
    // Replace the body by a two-branch union; each branch holds one of
    // the generated triples (or a fresh one).
    sparql::AstVector<Pattern> left, right;
    if (triples.empty()) {
      for (const TriplePattern& t : GenerateTriples(1)) {
        left.push_back(Pattern::Triple(t));
      }
    } else {
      left.push_back(Pattern::Triple(triples[0]));
    }
    if (triples.size() >= 2) {
      for (size_t i = 1; i < triples.size(); ++i) {
        right.push_back(Pattern::Triple(triples[i]));
      }
    } else {
      for (const TriplePattern& t : GenerateTriples(1)) {
        right.push_back(Pattern::Triple(t));
      }
    }
    children.push_back(Pattern::Union(
        {Pattern::Group(std::move(left)), Pattern::Group(std::move(right))}));
  } else {
    for (size_t i = 0; i < std::min(optional_from, triples.size()); ++i) {
      children.push_back(Pattern::Triple(triples[i]));
    }
  }
  if (use_optional) {
    sparql::AstVector<Pattern> opt_children;
    for (size_t i = optional_from; i < triples.size(); ++i) {
      opt_children.push_back(Pattern::Triple(triples[i]));
    }
    for (const TriplePattern& t : opt_extra) {
      opt_children.push_back(Pattern::Triple(t));
    }
    if (rng_.Chance(profile_.non_well_designed_rate)) {
      // Violate Definition 5.3: introduce a variable that occurs in two
      // sibling OPTIONAL blocks but not in the mandatory part.
      TriplePattern extra = TriplePattern::Make(
          Term::Var("wd_violation"),
          Term::Iri(profile_.ns + "prop/p0"), Term::Var("wd_other"));
      opt_children.push_back(Pattern::Triple(extra));
      sparql::AstVector<Pattern> second_opt;
      second_opt.push_back(Pattern::Triple(TriplePattern::Make(
          Term::Var("wd_violation"), Term::Iri(profile_.ns + "prop/p1"),
          Term::Var("wd_third"))));
      children.push_back(
          Pattern::Optional(Pattern::Group(std::move(opt_children))));
      children.push_back(
          Pattern::Optional(Pattern::Group(std::move(second_opt))));
    } else if (!opt_children.empty()) {
      children.push_back(
          Pattern::Optional(Pattern::Group(std::move(opt_children))));
    }
  }
  // Union alongside the base triples ({A, U} style).
  if (use_union && !union_standalone) {
    sparql::AstVector<Pattern> left, right;
    for (const TriplePattern& t : GenerateTriples(1)) {
      left.push_back(Pattern::Triple(t));
    }
    for (const TriplePattern& t : GenerateTriples(1)) {
      right.push_back(Pattern::Triple(t));
    }
    children.push_back(Pattern::Union(
        {Pattern::Group(std::move(left)), Pattern::Group(std::move(right))}));
  }

  // Refresh the variable pool (standalone unions replaced the triples).
  body_vars.clear();
  for (const Pattern& c : children) c.CollectVariables(body_vars);

  // FILTER.
  if (!body_vars.empty() && (complex || rng_.Chance(profile_.filter_rate))) {
    std::string v = *body_vars.begin();
    double pick = rng_.NextDouble();
    Expr f;
    if (pick < 0.55) {
      // lang(?v) = "en" — a simple filter.
      f = Expr::Binary(ExprKind::kCompare, "=",
                       Expr::Call("LANG", {Expr::MakeVar(v)}),
                       Expr::MakeTerm(Term::Literal("en")));
    } else if (pick < 0.8) {
      f = Expr::Call("REGEX", {Expr::MakeVar(v),
                               Expr::MakeTerm(Term::Literal("^A.*"))});
    } else if (pick < 0.92 && body_vars.size() >= 2) {
      auto it = body_vars.begin();
      std::string v2 = *++it;
      f = Expr::Binary(ExprKind::kCompare, "=", Expr::MakeVar(v),
                       Expr::MakeVar(v2));
    } else if (body_vars.size() >= 2) {
      // Non-simple filter: two variables under <.
      auto it = body_vars.begin();
      std::string v2 = *++it;
      f = Expr::Binary(ExprKind::kCompare, "<", Expr::MakeVar(v),
                       Expr::MakeVar(v2));
    } else {
      f = Expr::Call("BOUND", {Expr::MakeVar(v)});
    }
    children.push_back(Pattern::Filter(std::move(f)));
  }

  // MINUS / BIND / VALUES / SERVICE / subquery.
  if (rng_.Chance(profile_.minus_rate)) {
    sparql::AstVector<Pattern> body;
    for (const TriplePattern& t : GenerateTriples(1)) {
      body.push_back(Pattern::Triple(t));
    }
    children.push_back(Pattern::Minus(Pattern::Group(std::move(body))));
  }
  if (rng_.Chance(profile_.not_exists_rate) && !body_vars.empty()) {
    Expr ne;
    ne.kind = ExprKind::kNotExists;
    sparql::AstVector<Pattern> body;
    for (const TriplePattern& t : GenerateTriples(1)) {
      body.push_back(Pattern::Triple(t));
    }
    ne.pattern = std::make_shared<Pattern>(Pattern::Group(std::move(body)));
    children.push_back(Pattern::Filter(std::move(ne)));
  }
  if (rng_.Chance(profile_.bind_rate) && !body_vars.empty()) {
    Pattern bind;
    bind.kind = PatternKind::kBind;
    bind.expr = Expr::Call("STR", {Expr::MakeVar(*body_vars.begin())});
    bind.var = Term::Var("bound");
    children.push_back(std::move(bind));
  }
  if (rng_.Chance(profile_.values_rate)) {
    Pattern values;
    values.kind = PatternKind::kValues;
    values.values_vars.push_back(Term::Var("vv"));
    values.values_rows.push_back(
        {std::optional<Term>(Term::Iri(FreshIri("resource")))});
    children.push_back(std::move(values));
  }
  if (rng_.Chance(profile_.service_rate)) {
    Pattern service;
    service.kind = PatternKind::kService;
    service.graph = Term::Iri("http://wikiba.se/ontology#label");
    sparql::AstVector<Pattern> body;
    for (const TriplePattern& t : GenerateTriples(1)) {
      body.push_back(Pattern::Triple(t));
    }
    service.children.push_back(Pattern::Group(std::move(body)));
    children.push_back(std::move(service));
  }
  if (rng_.Chance(profile_.subquery_rate)) {
    auto sub = std::make_shared<Query>();
    sub->form = QueryForm::kSelect;
    SelectItem item;
    item.var = Term::Var("sq");
    sub->select_items.push_back(item);
    sub->has_body = true;
    sparql::AstVector<Pattern> body;
    body.push_back(Pattern::Triple(TriplePattern::Make(
        Term::Var("sq"), Term::Iri(profile_.ns + "prop/p0"),
        Term::Var("sqo"))));
    sub->where = Pattern::Group(std::move(body));
    sub->limit = 10;
    Pattern subp;
    subp.kind = PatternKind::kSubSelect;
    subp.subquery = std::move(sub);
    children.push_back(std::move(subp));
  }

  // GRAPH: wrap the whole body.
  Pattern body = Pattern::Group(std::move(children));
  if (rng_.Chance(profile_.graph_rate)) {
    body = Pattern::Group({Pattern::Graph(
        rng_.Chance(0.5) ? Term::Var("g") : Term::Iri(FreshIri("graph")),
        std::move(body))});
  }
  q.has_body = true;
  q.where = std::move(body);

  // Projection and modifiers.
  std::set<std::string> vars;
  q.where.CollectInScopeVariables(vars);
  if (form == QueryForm::kSelect) {
    bool project =
        !vars.empty() && vars.size() >= 2 && rng_.Chance(profile_.projection_rate);
    if (project) {
      size_t keep = 1 + rng_.Below(vars.size() - 1);
      size_t i = 0;
      for (const std::string& v : vars) {
        if (i++ >= keep) break;
        SelectItem item;
        item.var = Term::Var(v);
        q.select_items.push_back(item);
      }
    } else {
      q.select_star = true;
    }
    if (rng_.Chance(profile_.count_rate)) {
      q.select_items.clear();
      q.select_star = false;
      SelectItem item;
      item.var = Term::Var("cnt");
      Expr agg;
      agg.kind = ExprKind::kAggregate;
      agg.op = "COUNT";
      agg.star = true;
      item.expr = std::move(agg);
      q.select_items.push_back(item);
    }
    if (rng_.Chance(profile_.group_by_rate) && !vars.empty()) {
      sparql::GroupCondition gc;
      gc.expr = Expr::MakeVar(*vars.begin());
      q.group_by.push_back(std::move(gc));
    }
    if (rng_.Chance(profile_.other_agg_rate) && !vars.empty()) {
      SelectItem item;
      item.var = Term::Var("agg");
      Expr agg;
      agg.kind = ExprKind::kAggregate;
      agg.op = rng_.Chance(0.5) ? "MAX" : "MIN";
      agg.args.push_back(Expr::MakeVar(*vars.begin()));
      item.expr = std::move(agg);
      q.select_items.push_back(item);
      q.select_star = false;
    }
  }
  q.distinct = rng_.Chance(profile_.distinct_rate);
  if (rng_.Chance(profile_.limit_rate)) q.limit = 10 + rng_.Below(1000);
  if (rng_.Chance(profile_.offset_rate)) q.offset = rng_.Below(1000);
  if (rng_.Chance(profile_.order_by_rate) && !vars.empty()) {
    sparql::OrderCondition oc;
    oc.descending = rng_.Chance(0.5);
    oc.expr = Expr::MakeVar(*vars.begin());
    q.order_by.push_back(std::move(oc));
  }
  return q;
}

Query SyntheticLogGenerator::GenerateQuery() {
  std::vector<double> weights = {profile_.w_select, profile_.w_ask,
                                 profile_.w_describe, profile_.w_construct};
  size_t pick = rng_.Weighted(weights);
  QueryForm form = pick == 0   ? QueryForm::kSelect
                   : pick == 1 ? QueryForm::kAsk
                   : pick == 2 ? QueryForm::kDescribe
                               : QueryForm::kConstruct;
  if (form == QueryForm::kConstruct) {
    // Construct: template == body (the short form).
    Query q = GenerateQueryOfForm(QueryForm::kSelect);
    q.form = QueryForm::kConstruct;
    q.select_items.clear();
    q.select_star = false;
    q.group_by.clear();
    q.order_by.clear();
    std::vector<const TriplePattern*> triples;
    if (q.has_body) q.where.CollectTriples(triples);
    for (const TriplePattern* t : triples) {
      if (!t->has_path) q.construct_template.push_back(*t);
    }
    if (q.construct_template.empty()) {
      q.construct_template.push_back(TriplePattern::Make(
          Term::Var("s"), Term::Var("p"), Term::Var("o")));
      q.has_body = true;
      q.where = Pattern::Group({Pattern::Triple(q.construct_template[0])});
    }
    return q;
  }
  return GenerateQueryOfForm(form);
}

std::vector<std::string> SyntheticLogGenerator::GenerateLog() {
  uint64_t total = std::max<uint64_t>(
      options_.min_entries,
      static_cast<uint64_t>(static_cast<double>(profile_.total_queries) *
                            options_.scale));
  uint64_t valid = static_cast<uint64_t>(static_cast<double>(total) *
                                         profile_.valid_rate);
  uint64_t unique = std::max<uint64_t>(
      1, static_cast<uint64_t>(static_cast<double>(valid) *
                               profile_.unique_rate));

  // Distinct valid queries.
  std::vector<std::string> uniques;
  std::set<std::string> seen;
  uniques.reserve(unique);
  while (uniques.size() < unique) {
    std::string text = sparql::Serialize(GenerateQuery());
    if (seen.insert(text).second) uniques.push_back(std::move(text));
  }

  // Emit with duplication: every unique query at least once, remaining
  // mass distributed zipf-style (few queries repeated very often, the
  // typical endpoint pattern).
  std::vector<std::string> log;
  log.reserve(total + total / 10);
  for (const std::string& q : uniques) {
    log.push_back("query=" + util::PercentEncode(q));
  }
  for (uint64_t i = uniques.size(); i < valid; ++i) {
    size_t idx = static_cast<size_t>(rng_.Zipf(uniques.size(), 1.3) - 1);
    log.push_back("query=" + util::PercentEncode(uniques[idx]));
  }
  // Malformed queries (fail the parser) for the Total - Valid gap.
  for (uint64_t i = valid; i < total; ++i) {
    switch (rng_.Below(3)) {
      case 0:
        log.push_back("query=" + util::PercentEncode(
            "SELECT ?x WHERE { ?x <" + FreshIri("p") + "> "));
        break;
      case 1:
        log.push_back("query=" + util::PercentEncode(
            "PREFIX broken SELECT * WHERE { ?s ?p ?o }"));
        break;
      default:
        log.push_back("query=" + util::PercentEncode(
            "INSERT DATA { <a> <b> <c> }"));
        break;
    }
  }
  // Non-query noise (http requests etc.) that cleaning must drop.
  uint64_t noise = total / 20;
  for (uint64_t i = 0; i < noise; ++i) {
    log.push_back("GET /resource/" + std::to_string(rng_.Below(10000)) +
                  " HTTP/1.1 200");
  }
  // Shuffle to interleave.
  for (size_t i = log.size(); i > 1; --i) {
    size_t j = rng_.Below(i);
    std::swap(log[i - 1], log[j]);
  }
  return log;
}

std::vector<std::string> GenerateStreakLog(const DatasetProfile& profile,
                                           size_t num_queries,
                                           double session_rate,
                                           uint64_t seed) {
  GeneratorOptions options;
  options.seed = seed;
  SyntheticLogGenerator gen(profile, options);
  util::Rng rng(seed ^ 0xABCDEF);
  std::vector<std::string> log;
  log.reserve(num_queries);
  while (log.size() < num_queries) {
    if (rng.Chance(session_rate)) {
      // A refinement session: a seed query gradually modified. Gaps
      // between successive refinements are small (< window).
      std::string seed_query = sparql::Serialize(gen.GenerateQuery());
      size_t refinements = 1 + rng.Below(25);
      std::string current = seed_query;
      for (size_t r = 0; r < refinements && log.size() < num_queries; ++r) {
        log.push_back(current);
        // Interleave unrelated queries (other users) with small gaps.
        size_t gap = rng.Below(4);
        for (size_t g = 0; g < gap && log.size() < num_queries; ++g) {
          log.push_back(sparql::Serialize(gen.GenerateQuery()));
        }
        // Modify ~10% of the query: append/change a small suffix.
        std::string tweak = " # v" + std::to_string(r);
        if (current.size() > 40 && rng.Chance(0.5)) {
          current[current.size() / 2] = 'x';
        }
        current += tweak;
      }
    } else {
      log.push_back(sparql::Serialize(gen.GenerateQuery()));
    }
  }
  log.resize(num_queries);
  return log;
}

}  // namespace sparqlog::corpus
