#ifndef SPARQLOG_CORPUS_GENERATOR_H_
#define SPARQLOG_CORPUS_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/profile.h"
#include "sparql/ast.h"
#include "util/rng.h"

namespace sparqlog::corpus {

/// Options for synthetic log generation.
struct GeneratorOptions {
  /// Scale factor against the paper's log sizes (Table 1); the default
  /// keeps bench runtimes in seconds while preserving all relative
  /// percentages.
  double scale = 0.0005;
  /// Never generate fewer than this many log entries per dataset.
  uint64_t min_entries = 400;
  uint64_t seed = 2017;
};

/// Generates synthetic query-log files whose marginal statistics are
/// calibrated to a DatasetProfile (see DESIGN.md: substitution for the
/// proprietary USEWOD/OpenLink logs).
///
/// The output is a list of log entries: `query=<urlencoded SPARQL>`
/// lines (some malformed at 1 - valid_rate), interleaved with non-query
/// noise lines that the ingestion step must discard, duplicated
/// according to the profile's unique_rate.
class SyntheticLogGenerator {
 public:
  SyntheticLogGenerator(const DatasetProfile& profile,
                        const GeneratorOptions& options);

  /// Generates the full (scaled) log for this dataset.
  std::vector<std::string> GenerateLog();

  /// Generates one random valid query AST per the profile's marginals.
  /// Exposed for tests and for the streak generator.
  sparql::Query GenerateQuery();

  /// Generates a random property path according to the Table 5 mix.
  sparql::PathExpr GeneratePath();

 private:
  const DatasetProfile& profile_;
  GeneratorOptions options_;
  util::Rng rng_;
  uint64_t fresh_counter_ = 0;

  std::string FreshIri(const std::string& kind);
  sparql::Query GenerateQueryOfForm(sparql::QueryForm form);
  std::vector<sparql::TriplePattern> GenerateTriples(int n);
  int SampleTripleCount();
};

/// Generates a single-day log with planted query-refinement sessions for
/// the streak analysis (Section 8): users start from a seed query and
/// gradually modify it.
std::vector<std::string> GenerateStreakLog(const DatasetProfile& profile,
                                           size_t num_queries,
                                           double session_rate,
                                           uint64_t seed);

}  // namespace sparqlog::corpus

#endif  // SPARQLOG_CORPUS_GENERATOR_H_
