#ifndef SPARQLOG_CORPUS_INGEST_H_
#define SPARQLOG_CORPUS_INGEST_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "sparql/ast.h"
#include "sparql/parser.h"

namespace sparqlog::corpus {

/// The Table 1 pipeline counters: Total (query entries after cleaning),
/// Valid (parseable), Unique (valid after duplicate elimination).
struct CorpusStats {
  uint64_t total = 0;
  uint64_t valid = 0;
  uint64_t unique = 0;
};

/// Callback invoked for every query that survives a pipeline stage.
using QuerySink = std::function<void(const sparql::Query&)>;

/// Log ingestion: cleaning, validation, and duplicate elimination
/// (Section 2 of the paper; Jena is replaced by our parser).
class LogIngestor {
 public:
  explicit LogIngestor(sparql::ParserOptions parser_options = {});

  /// Processes one raw log line:
  ///  * `query=<urlencoded>` lines are query entries;
  ///  * any other line is non-query noise and is dropped (not counted).
  /// Returns true iff the line was a query entry.
  bool ProcessLine(const std::string& line);

  /// Feeds a whole log.
  void ProcessLog(const std::vector<std::string>& lines);

  /// Registers a sink receiving every *unique* valid query (at its first
  /// occurrence) — this is the paper's primary analysis corpus.
  void set_unique_sink(QuerySink sink) { unique_sink_ = std::move(sink); }

  /// Registers a sink receiving every *valid* query, duplicates
  /// included (the appendix corpus).
  void set_valid_sink(QuerySink sink) { valid_sink_ = std::move(sink); }

  const CorpusStats& stats() const { return stats_; }

 private:
  sparql::Parser parser_;
  CorpusStats stats_;
  QuerySink unique_sink_;
  QuerySink valid_sink_;
  /// Hashes of canonical serializations seen so far.
  std::unordered_set<uint64_t> seen_hashes_;
};

}  // namespace sparqlog::corpus

#endif  // SPARQLOG_CORPUS_INGEST_H_
