#ifndef SPARQLOG_CORPUS_INGEST_H_
#define SPARQLOG_CORPUS_INGEST_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "sparql/ast.h"
#include "sparql/parser.h"
#include "util/status.h"

namespace sparqlog::obs {
struct RunTelemetry;
}

namespace sparqlog::corpus {

/// The Table 1 pipeline counters: Total (query entries after cleaning),
/// Valid (parseable and fully analyzed), Unique (valid after duplicate
/// elimination) — plus the failure-model buckets. Every query entry
/// lands in exactly one of valid / malformed / abandoned / quarantined
/// (the conservation invariant `Conserved()`; see DESIGN.md "Failure
/// model").
struct CorpusStats {
  uint64_t total = 0;
  uint64_t valid = 0;
  uint64_t unique = 0;
  /// Query entries whose text did not parse (Total-but-not-Valid).
  uint64_t malformed = 0;
  /// Parseable entries whose structural analysis exhausted its step
  /// budget (Status::kTimeout from the analyzer). Always 0 with the
  /// default unlimited budgets.
  uint64_t abandoned = 0;
  /// Lines whose processing threw inside a pipeline worker (bad_alloc,
  /// injected faults); isolated by the containment layer so the run
  /// continues. Always 0 on a fault-free run.
  uint64_t quarantined = 0;

  /// Adds another partition's counters. Exact when the partitions saw
  /// disjoint slices of the canonical-hash space (see pipeline/shard.h).
  void Merge(const CorpusStats& other) {
    total += other.total;
    valid += other.valid;
    unique += other.unique;
    malformed += other.malformed;
    abandoned += other.abandoned;
    quarantined += other.quarantined;
  }

  /// The accounting-conservation invariant: the four outcome buckets
  /// partition the query entries.
  bool Conserved() const {
    return total == valid + malformed + abandoned + quarantined;
  }
};

/// FNV-1a — the hash used for duplicate elimination and shard routing.
uint64_t HashBytes(std::string_view s);

/// One log line after the parse stage: cleaned, URL-decoded, parsed, and
/// canonically hashed. This is the unit of work routed between pipeline
/// stages; `LogIngestor::Ingest` consumes it.
struct ParsedLine {
  /// The line was a query entry (counts toward Total).
  bool is_query = false;
  /// The query text parsed (counts toward Valid).
  bool valid = false;
  /// FNV-1a of the canonical serialization; meaningful iff `valid`.
  /// Equal hashes identify duplicates (same canonical AST).
  uint64_t canonical_hash = 0;
  /// FNV-1a of the raw line, for deterministic routing of entries that
  /// have no canonical form; only set for malformed and quarantined
  /// query entries.
  uint64_t line_hash = 0;
  /// The line's processing threw inside a pipeline worker and was
  /// isolated by the containment layer. Counts toward Total and the
  /// quarantined bucket; `valid` is false and `query` disengaged.
  bool quarantined = false;
  /// The AST; engaged iff `valid`.
  std::optional<sparql::Query> query;
};

/// The cleaning stage of `ParseLogLine`, shared with the benches so
/// they measure exactly the production input: strips the "query="
/// prefix and trailing CGI parameters (first raw '&'), URL-decoding
/// into `decode_buf` only when `%`/`+` escapes are present (otherwise
/// the returned view slices `line` directly). Returns nullopt for
/// non-query noise lines. The view dies with `line`/`decode_buf`.
std::optional<std::string_view> ExtractQueryText(std::string_view line,
                                                 std::string& decode_buf);

/// Runs the cleaning + validation stages on one raw log line:
///  * `query=<urlencoded>` lines are query entries; the value ends at
///    the first raw `&` (further CGI parameters are not query text);
///  * any other line is non-query noise (`is_query` false).
/// The decoded text is parsed with `parser`; entries whose value does
/// not decode to valid SPARQL come back with `valid == false` so the
/// ingestor can count them as Total-but-not-Valid. Thread-safe when
/// each thread uses its own parser.
///
/// `decode_buf` is caller-provided scratch for URL-decoding, reused
/// across lines so the steady state allocates nothing (values without
/// any `%`/`+` escape are parsed in place and skip even the decode
/// write). The canonical hash is streamed off the AST (`CanonicalHash`)
/// — the canonical string is never materialized.
ParsedLine ParseLogLine(sparql::Parser& parser, std::string_view line,
                        std::string& decode_buf);

/// Convenience overload with private scratch (one allocation per
/// escaped line); hot loops should hoist the buffer.
ParsedLine ParseLogLine(sparql::Parser& parser, const std::string& line);

/// Reusable per-worker ingest scratch: the parser's arena/token/pname
/// scratch plus the URL-decode buffer. One warm ParseScratch takes the
/// whole clean-decode-parse-hash path to zero heap allocations per
/// line. `Reset()` invalidates every Query previously parsed through
/// the scratch (they live on its arena) — reset only once downstream
/// consumers are done with them. The pname cache deliberately survives
/// Reset (cross-line hits are its purpose).
struct ParseScratch {
  sparql::ParserScratch parser;
  std::string decode_buf;

  void Reset() { parser.Reset(); }
};

/// Arena-pooled variant of ParseLogLine: the returned line's `query`
/// (when valid) lives on `scratch.parser.arena` until `scratch.Reset()`.
/// Multiple lines may be parsed into one scratch before resetting (the
/// pipeline accumulates a whole chunk); copying a Query detaches it
/// onto the heap. Byte-identical outputs to the heap overload — the
/// fuzz harness enforces this.
ParsedLine ParseLogLine(const sparql::Parser& parser, std::string_view line,
                        ParseScratch& scratch);

/// Callback invoked for every query that survives a pipeline stage.
using QuerySink = std::function<void(const sparql::Query&)>;

/// Gate consuming a query that would enter the analysis corpus. OK
/// means the query was fully analyzed (it counts as valid/unique);
/// Status::kTimeout means the analysis exhausted its step budget and
/// the query moves to the abandoned bucket instead. The verdict must be
/// deterministic per canonical query — budgets are step counts, so
/// equal queries always land in the same bucket regardless of
/// scheduling.
using QueryGate = std::function<util::Status(const sparql::Query&)>;

/// Log ingestion: cleaning, validation, and duplicate elimination
/// (Section 2 of the paper; Jena is replaced by our parser).
class LogIngestor {
 public:
  explicit LogIngestor(sparql::ParserOptions parser_options = {});

  /// Processes one raw log line — equivalent to `ParseLogLine` followed
  /// by `Ingest`. Returns true iff the line was a query entry.
  bool ProcessLine(const std::string& line);

  /// Runs the counting + duplicate-elimination stages on an
  /// already-parsed line. This is the shard-local half of `ProcessLine`:
  /// the parallel pipeline parses on worker threads and feeds each
  /// shard's ingestor through here.
  void Ingest(const ParsedLine& parsed);

  /// Feeds a whole log.
  void ProcessLog(const std::vector<std::string>& lines);

  /// Registers a sink receiving every *unique* valid query (at its first
  /// occurrence) — this is the paper's primary analysis corpus.
  void set_unique_sink(QuerySink sink);

  /// Registers a sink receiving every *valid* query, duplicates
  /// included (the appendix corpus).
  void set_valid_sink(QuerySink sink);

  /// Gate variants of the sinks: the consumer may veto the delivery
  /// with Status::kTimeout (analysis budget exhausted), moving the
  /// query — and, in unique mode, all its later duplicates — into the
  /// abandoned bucket. A plain sink is a gate that always returns OK.
  void set_unique_gate(QueryGate gate) { unique_gate_ = std::move(gate); }
  void set_valid_gate(QueryGate gate) { valid_gate_ = std::move(gate); }

  /// Points the ingestor at a metrics registry (owned by the caller,
  /// outliving the ingestor's use). Ingest then counts query entries,
  /// malformed entries, and analysis-corpus deliveries into the shard
  /// and analysis stages — the same counters for the serial path and
  /// for every pipeline shard, which is what makes the merged telemetry
  /// digest identical across serial and parallel runs. Counting only;
  /// no clock reads on this path.
  void set_telemetry(obs::RunTelemetry* telemetry) { telemetry_ = telemetry; }

  const CorpusStats& stats() const { return stats_; }

  /// Appends the dedup/accounting state (varint counters plus both
  /// seen-hash sets, sorted and gap-encoded so the blob is compact and
  /// deterministic) for the snapshot subsystem (util/snapshot_io.h).
  /// The registered gates/sinks are NOT part of the state; a restored
  /// ingestor must be wired to an analyzer restored from the same
  /// checkpoint.
  void SaveState(std::string& out) const;
  /// Restores state written by SaveState, consuming the bytes read.
  /// Returns false (leaving the ingestor unspecified) on a
  /// truncated/corrupt blob.
  bool LoadState(std::string_view& in);

 private:
  sparql::Parser parser_;
  CorpusStats stats_;
  QueryGate unique_gate_;
  QueryGate valid_gate_;
  /// Hashes of canonical serializations seen so far.
  std::unordered_set<uint64_t> seen_hashes_;
  /// Canonical hashes whose first occurrence exhausted the analysis
  /// budget: later duplicates go straight to the abandoned bucket (the
  /// budget verdict is per-canonical-query, so re-running the analysis
  /// would burn the same steps for the same answer).
  std::unordered_set<uint64_t> seen_abandoned_;
  /// Reused parse scratch for ProcessLine/ProcessLog: arena-pooled AST
  /// storage, recycled token buffer, pname cache, URL-decode buffer.
  /// Reset at each ProcessLine entry — safe because Ingest calls its
  /// sinks synchronously, so nothing references the previous line's
  /// Query by then.
  ParseScratch scratch_;
  /// Optional metrics registry; not owned.
  obs::RunTelemetry* telemetry_ = nullptr;
};

}  // namespace sparqlog::corpus

#endif  // SPARQLOG_CORPUS_INGEST_H_
