#ifndef SPARQLOG_CORPUS_REPORT_H_
#define SPARQLOG_CORPUS_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "analysis/features.h"
#include "analysis/operator_set.h"
#include "corpus/analysis_scratch.h"
#include "corpus/dictionary.h"
#include "fragments/fragment.h"
#include "graph/shapes.h"
#include "paths/path_class.h"
#include "sparql/ast.h"
#include "util/histogram.h"
#include "util/status.h"
#include "width/hypertree.h"
#include "width/treewidth.h"

namespace sparqlog::corpus {

/// Per-kernel step budgets for one query's structural analysis
/// (0 = unlimited, the default — identical behaviour to the unbudgeted
/// analyzer). Each query gets a fresh budget per kernel, so the
/// complete/abandon verdict depends only on the canonical query and the
/// limits — never on scheduling — which keeps merged digests
/// bit-reproducible (see DESIGN.md "Failure model").
struct AnalysisLimits {
  /// det-k-decomp separator search (TrySeparators + CheckSeparator calls).
  uint64_t ghw_steps = 0;
  /// Treewidth branch-and-bound (Search nodes).
  uint64_t treewidth_steps = 0;
  /// Girth all-pairs BFS (node expansions).
  uint64_t girth_steps = 0;

  bool any() const {
    return ghw_steps != 0 || treewidth_steps != 0 || girth_steps != 0;
  }
};

/// Keyword counters (Table 2 / Table 7).
struct KeywordCounts {
  uint64_t total = 0;
  uint64_t select = 0, ask = 0, describe = 0, construct = 0;
  uint64_t distinct = 0, limit = 0, offset = 0, order_by = 0, reduced = 0;
  uint64_t filter = 0, conj = 0, union_ = 0, optional = 0, graph = 0;
  uint64_t not_exists = 0, minus = 0, exists = 0;
  uint64_t count = 0, max = 0, min = 0, avg = 0, sum = 0;
  uint64_t group_by = 0, having = 0;
  uint64_t service = 0, bind = 0, values = 0;

  /// Adds another partition's counters (pipeline shard merging).
  void Merge(const KeywordCounts& other);
};

/// Per-dataset triple statistics (Figure 1 / Figure 8).
struct TripleStats {
  /// Histogram over Select/Ask queries: buckets 0..10 plus 11+.
  util::BucketHistogram histogram{11};
  uint64_t select_ask = 0;   ///< Select/Ask query count
  uint64_t all_queries = 0;  ///< all queries of the dataset
  uint64_t triple_sum = 0;   ///< summed over all queries (Avg#T)
  uint64_t max_triples = 0;

  /// Adds another partition's counters (pipeline shard merging).
  void Merge(const TripleStats& other);

  double SelectAskShare() const {
    return all_queries == 0
               ? 0.0
               : static_cast<double>(select_ask) /
                     static_cast<double>(all_queries);
  }
  double AvgTriples() const {
    return all_queries == 0
               ? 0.0
               : static_cast<double>(triple_sum) /
                     static_cast<double>(all_queries);
  }
};

/// Projection / subquery statistics (Section 4.4).
struct ProjectionStats {
  uint64_t total = 0;
  uint64_t with_projection = 0;
  uint64_t select_with_projection = 0;
  uint64_t ask_with_projection = 0;
  uint64_t indeterminate = 0;
  uint64_t with_subqueries = 0;

  /// Adds another partition's counters (pipeline shard merging).
  void Merge(const ProjectionStats& other);
};

/// Fragment statistics (Section 5.2 / Figure 5).
struct FragmentStats {
  uint64_t select_ask = 0;
  uint64_t aof = 0, cq = 0, cpf = 0, cqf = 0, well_designed = 0, cqof = 0;
  uint64_t wide_interface = 0;  ///< interface width > 1 (paper: 310)
  /// Size histograms (number of triples: 1..10, 11+) per fragment.
  util::BucketHistogram cq_sizes{11};
  util::BucketHistogram cqf_sizes{11};
  util::BucketHistogram cqof_sizes{11};

  /// Adds another partition's counters (pipeline shard merging).
  void Merge(const FragmentStats& other);
};

/// Shape statistics for one fragment column of Table 4 / Table 9.
struct ShapeCounts {
  uint64_t total = 0;
  uint64_t single_edge = 0, chain = 0, chain_set = 0, star = 0, tree = 0,
           forest = 0, cycle = 0, flower = 0, flower_set = 0;
  uint64_t treewidth_le2 = 0, treewidth_3 = 0, treewidth_gt3 = 0;
  /// Girth histogram for cyclic queries (Section 6.1: shortest cycles).
  std::map<int, uint64_t> girth;
  /// Single-edge queries using constants (Section 6.1: 78.70%).
  uint64_t single_edge_with_constants = 0;

  /// Adds another partition's counters (pipeline shard merging).
  void Merge(const ShapeCounts& other);
};

/// Hypergraph statistics for variable-predicate CQOF queries
/// (Section 6.2).
struct HypergraphStats {
  uint64_t total = 0;
  uint64_t ghw1 = 0, ghw2 = 0, ghw3 = 0, ghw_more = 0;
  uint64_t decompositions_gt10_nodes = 0;
  uint64_t decompositions_gt100_nodes = 0;

  /// Adds another partition's counters (pipeline shard merging).
  void Merge(const HypergraphStats& other);
};

/// Property-path statistics (Table 5 / Figure 10).
struct PathStats {
  uint64_t total_paths = 0;
  uint64_t trivial_negated = 0;  ///< !a
  uint64_t trivial_inverse = 0;  ///< ^a
  uint64_t navigational = 0;
  uint64_t with_inverse = 0;  ///< reverse nested in complex expressions
  uint64_t not_ctract = 0;
  std::map<paths::PathType, uint64_t> by_type;

  /// Adds another partition's counters (pipeline shard merging).
  void Merge(const PathStats& other);
};

/// One-pass analyzer: feed unique (or valid) queries, read every table.
class CorpusAnalyzer {
 public:
  CorpusAnalyzer() = default;

  /// Analyzes one query, attributing it to `dataset` for the
  /// per-dataset statistics (Figure 1).
  void AddQuery(const sparql::Query& q, const std::string& dataset = "all");

  /// Budgeted variant: runs the expensive kernels (GHW, treewidth,
  /// girth) under `limits`. Compute-then-commit — if any kernel
  /// exhausts its budget, Status::kTimeout is returned and NO aggregate
  /// is touched, so the caller can move the query to the abandoned
  /// bucket without half-counted statistics. With default (unlimited)
  /// limits this is exactly AddQuery and always returns OK.
  util::Status AddQueryBudgeted(const sparql::Query& q,
                                const std::string& dataset,
                                const AnalysisLimits& limits);

  /// Folds another analyzer's aggregates into this one. When each query
  /// was analyzed by exactly one analyzer (the pipeline's shard
  /// invariant), the merged state is identical to analyzing all queries
  /// serially: every statistic is an order-independent sum.
  void MergeFrom(const CorpusAnalyzer& other);

  const KeywordCounts& keywords() const { return keywords_; }
  const analysis::OperatorSetDistribution& operator_sets() const {
    return opsets_;
  }
  const ProjectionStats& projection() const { return projection_; }
  const FragmentStats& fragments() const { return fragments_; }
  const ShapeCounts& cq_shapes() const { return cq_shapes_; }
  const ShapeCounts& cqf_shapes() const { return cqf_shapes_; }
  const ShapeCounts& cqof_shapes() const { return cqof_shapes_; }
  const HypergraphStats& hypergraphs() const { return hypergraphs_; }
  const PathStats& paths() const { return paths_; }
  const std::map<std::string, TripleStats>& per_dataset() const {
    return per_dataset_;
  }

  /// Appends every aggregate (the exact state MergeFrom/digests see) as
  /// a vbyte stream for the snapshot subsystem. Deterministic: maps
  /// iterate in key order, histograms dump their fixed bucket layout.
  /// Dataset names are interned into `dict` and stored as varint ids —
  /// the dictionary travels once per snapshot, not once per shard.
  void SaveState(std::string& out, TermDictionary& dict) const;
  /// Restores state written by SaveState into a freshly-constructed
  /// analyzer (histograms are rebuilt additively, so pre-existing
  /// counts would corrupt them), consuming the bytes read and resolving
  /// dataset ids through `dict`. Returns false on a truncated/corrupt
  /// or layout-mismatched blob, including ids absent from `dict`.
  bool LoadState(std::string_view& in, const TermDictionary& dict);

 private:
  /// Kernel results of one query's phase-1 (compute) pass, committed to
  /// the aggregates only if no budget was exhausted.
  struct ShapeOutcome {
    bool has_hypergraph = false;
    width::GhwResult ghw;
    bool has_graph = false;
    graph::ShapeClass shape;
    width::TreewidthResult tw;
    bool single_edge_has_constant = false;
  };

  util::Status ComputeShapes(const sparql::Query& q,
                             const fragments::FragmentClass& fc,
                             const AnalysisLimits& limits, ShapeOutcome& out);
  void CommitShapes(const fragments::FragmentClass& fc,
                    const ShapeOutcome& outcome);
  void AnalyzePaths(const sparql::Pattern& p);

  KeywordCounts keywords_;
  analysis::OperatorSetDistribution opsets_;
  ProjectionStats projection_;
  FragmentStats fragments_;
  ShapeCounts cq_shapes_, cqf_shapes_, cqof_shapes_;
  HypergraphStats hypergraphs_;
  PathStats paths_;
  std::map<std::string, TripleStats> per_dataset_;
  /// Recycled structural-analysis buffers (term interner, graph/width
  /// scratch); not part of the statistics — Merge/digests ignore it.
  AnalysisScratch scratch_;
};

}  // namespace sparqlog::corpus

#endif  // SPARQLOG_CORPUS_REPORT_H_
