#ifndef SPARQLOG_CORPUS_ANALYSIS_SCRATCH_H_
#define SPARQLOG_CORPUS_ANALYSIS_SCRATCH_H_

#include <vector>

#include "graph/canonical.h"
#include "graph/shapes.h"
#include "width/hypertree.h"
#include "width/treewidth.h"

namespace sparqlog::corpus {

/// Recycled per-analyzer working state for the structural-analysis hot
/// path (Table 4 shapes, Section 6 widths): triple/filter collection
/// buffers, the term interner and union-find of the canonical builders,
/// the canonical graph/hypergraph output buffers, and the shape /
/// treewidth / GHW scratch spaces. One instance lives inside each
/// CorpusAnalyzer — one analyzer per pipeline shard, each driven by a
/// single worker thread — mirroring the per-worker decode scratch of
/// the ingest hot path. Nothing here is part of the analyzer's
/// statistics; merging and digests ignore it.
struct AnalysisScratch {
  std::vector<const sparql::TriplePattern*> triples;
  std::vector<const sparql::Expr*> filters;
  graph::CanonicalScratch canonical;
  graph::CanonicalGraph graph;
  graph::Hypergraph hypergraph;
  graph::ShapeScratch shape;
  width::TreewidthScratch treewidth;
  width::GhwScratch ghw;
};

}  // namespace sparqlog::corpus

#endif  // SPARQLOG_CORPUS_ANALYSIS_SCRATCH_H_
