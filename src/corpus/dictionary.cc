#include "corpus/dictionary.h"

#include "util/vbyte.h"

namespace sparqlog::corpus {

uint64_t TermDictionary::Intern(std::string_view term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  uint64_t id = terms_.size();
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  return id;
}

void TermDictionary::EncodeTo(std::string& out) const {
  util::vbyte::PutVarint(out, terms_.size());
  for (const std::string& term : terms_) {
    util::vbyte::PutLenPrefixed(out, term);
  }
}

bool TermDictionary::DecodeFrom(std::string_view& in) {
  terms_.clear();
  index_.clear();
  uint64_t count;
  // Every term costs at least one framing byte, so counts beyond the
  // remaining payload are corrupt (and this bounds the reserve).
  if (!util::vbyte::GetVarint(in, count) || count > in.size()) return false;
  terms_.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view term;
    if (!util::vbyte::GetLenPrefixed(in, term, 1ULL << 20)) return false;
    if (index_.count(term) != 0) return false;  // duplicate term: corrupt
    terms_.emplace_back(term);
    index_.emplace(terms_.back(), i);
  }
  return true;
}

}  // namespace sparqlog::corpus
