#ifndef SPARQLOG_RDF_DICTIONARY_H_
#define SPARQLOG_RDF_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/triple.h"

namespace sparqlog::rdf {

/// Bidirectional string <-> TermId dictionary.
///
/// The store and generators keep terms dictionary-encoded (the standard
/// RDF-store design, cf. RDF-3X); strings are interned once.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the id for `s`, interning it if new. Id 0 is never returned
  /// (reserved as "invalid").
  TermId Intern(std::string_view s);

  /// Returns the id for `s` or 0 if not present.
  TermId Lookup(std::string_view s) const;

  /// Returns the string for `id`. `id` must have been returned by Intern.
  const std::string& Resolve(TermId id) const;

  size_t size() const { return strings_.size() - 1; }

 private:
  std::vector<std::string> strings_ = {""};  // index 0 reserved
  std::unordered_map<std::string_view, TermId> index_;
};

}  // namespace sparqlog::rdf

#endif  // SPARQLOG_RDF_DICTIONARY_H_
