#include "rdf/term.h"

#include <tuple>

namespace sparqlog::rdf {

Term Term::Iri(std::string_view v, std::pmr::memory_resource* mr) {
  Term t(mr);
  t.kind = TermKind::kIri;
  t.value = v;
  return t;
}

Term Term::Literal(std::string_view lexical, std::string_view datatype,
                   std::string_view lang, std::pmr::memory_resource* mr) {
  Term t(mr);
  t.kind = TermKind::kLiteral;
  t.value = lexical;
  t.datatype = datatype;
  t.lang = lang;
  return t;
}

Term Term::Blank(std::string_view label, std::pmr::memory_resource* mr) {
  Term t(mr);
  t.kind = TermKind::kBlank;
  t.value = label;
  return t;
}

Term Term::Var(std::string_view name, std::pmr::memory_resource* mr) {
  Term t(mr);
  t.kind = TermKind::kVariable;
  t.value = name;
  return t;
}

bool Term::operator<(const Term& o) const {
  return std::tie(kind, value, datatype, lang) <
         std::tie(o.kind, o.value, o.datatype, o.lang);
}

namespace {
std::string EscapeLiteral(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}
}  // namespace

std::string Term::ToString() const {
  switch (kind) {
    case TermKind::kIri: {
      std::string out;
      out.reserve(value.size() + 2);
      out.push_back('<');
      out.append(value);
      out.push_back('>');
      return out;
    }
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeLiteral(value) + "\"";
      if (!lang.empty()) {
        out.push_back('@');
        out.append(lang);
      } else if (!datatype.empty()) {
        out.append("^^<");
        out.append(datatype);
        out.push_back('>');
      }
      return out;
    }
    case TermKind::kBlank:
      return "_:" + std::string(value);
    case TermKind::kVariable:
      return "?" + std::string(value);
  }
  return "";
}

}  // namespace sparqlog::rdf
