#include "rdf/term.h"

#include <tuple>

namespace sparqlog::rdf {

Term Term::Iri(std::string v) {
  Term t;
  t.kind = TermKind::kIri;
  t.value = std::move(v);
  return t;
}

Term Term::Literal(std::string lexical, std::string datatype,
                   std::string lang) {
  Term t;
  t.kind = TermKind::kLiteral;
  t.value = std::move(lexical);
  t.datatype = std::move(datatype);
  t.lang = std::move(lang);
  return t;
}

Term Term::Blank(std::string label) {
  Term t;
  t.kind = TermKind::kBlank;
  t.value = std::move(label);
  return t;
}

Term Term::Var(std::string name) {
  Term t;
  t.kind = TermKind::kVariable;
  t.value = std::move(name);
  return t;
}

bool Term::operator<(const Term& o) const {
  return std::tie(kind, value, datatype, lang) <
         std::tie(o.kind, o.value, o.datatype, o.lang);
}

namespace {
std::string EscapeLiteral(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}
}  // namespace

std::string Term::ToString() const {
  switch (kind) {
    case TermKind::kIri:
      return "<" + value + ">";
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeLiteral(value) + "\"";
      if (!lang.empty()) {
        out += "@" + lang;
      } else if (!datatype.empty()) {
        out += "^^<" + datatype + ">";
      }
      return out;
    }
    case TermKind::kBlank:
      return "_:" + value;
    case TermKind::kVariable:
      return "?" + value;
  }
  return "";
}

}  // namespace sparqlog::rdf
