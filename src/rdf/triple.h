#ifndef SPARQLOG_RDF_TRIPLE_H_
#define SPARQLOG_RDF_TRIPLE_H_

#include <cstdint>
#include <tuple>

namespace sparqlog::rdf {

/// Dictionary-encoded term identifier used by the triple store.
using TermId = uint32_t;

/// A dictionary-encoded RDF triple (data, not a pattern).
struct EncodedTriple {
  TermId s = 0;
  TermId p = 0;
  TermId o = 0;

  bool operator==(const EncodedTriple& t) const {
    return s == t.s && p == t.p && o == t.o;
  }
  bool operator<(const EncodedTriple& t) const {
    return std::tie(s, p, o) < std::tie(t.s, t.p, t.o);
  }
};

}  // namespace sparqlog::rdf

#endif  // SPARQLOG_RDF_TRIPLE_H_
