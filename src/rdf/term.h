#ifndef SPARQLOG_RDF_TERM_H_
#define SPARQLOG_RDF_TERM_H_

#include <memory_resource>
#include <string>
#include <string_view>

namespace sparqlog::rdf {

/// Storage type for term payloads. Polymorphic-allocator strings let the
/// parser place every payload in an epoch-reset arena (zero heap
/// allocations on the hot path) while plain `Term t;` keeps working on
/// the default heap resource. Copy construction always lands on the
/// default resource (`select_on_container_copy_construction`), so
/// copying an arena-built term detaches it from the arena.
using TermString = std::pmr::string;

/// The kind of an RDF/SPARQL term.
///
/// Per the paper's preliminaries, RDF triples are <s, p, o> with
/// s in I ∪ B, p in I, o in I ∪ B ∪ L; SPARQL adds variables V.
enum class TermKind {
  kIri,       ///< An IRI (element of I).
  kLiteral,   ///< A literal (element of L), with optional datatype/lang.
  kBlank,     ///< A blank node (element of B).
  kVariable,  ///< A query variable (element of V), e.g. "?x".
};

/// A single RDF/SPARQL term. Value type; cheap to copy for typical
/// query-sized strings. Construct with a memory_resource to place the
/// payload strings in an arena; the default constructor uses the heap.
struct Term {
  TermKind kind = TermKind::kIri;
  /// IRI string, literal lexical form, blank node label, or variable name
  /// (without the leading '?').
  TermString value;
  /// For literals only: datatype IRI ("" if none).
  TermString datatype;
  /// For literals only: language tag ("" if none).
  TermString lang;

  Term() = default;
  explicit Term(std::pmr::memory_resource* mr)
      : value(mr), datatype(mr), lang(mr) {}

  static Term Iri(std::string_view v,
                  std::pmr::memory_resource* mr =
                      std::pmr::get_default_resource());
  static Term Literal(std::string_view lexical, std::string_view datatype = {},
                      std::string_view lang = {},
                      std::pmr::memory_resource* mr =
                          std::pmr::get_default_resource());
  static Term Blank(std::string_view label,
                    std::pmr::memory_resource* mr =
                        std::pmr::get_default_resource());
  static Term Var(std::string_view name,
                  std::pmr::memory_resource* mr =
                      std::pmr::get_default_resource());

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_literal() const { return kind == TermKind::kLiteral; }
  bool is_blank() const { return kind == TermKind::kBlank; }
  bool is_variable() const { return kind == TermKind::kVariable; }

  /// True for variables and blank nodes: the positions that form nodes of
  /// the canonical hypergraph (Section 5 of the paper).
  bool is_unknown() const { return is_variable() || is_blank(); }

  /// True for IRIs and literals (constants of the query).
  bool is_constant() const { return is_iri() || is_literal(); }

  bool operator==(const Term& o) const {
    return kind == o.kind && value == o.value && datatype == o.datatype &&
           lang == o.lang;
  }
  bool operator!=(const Term& o) const { return !(*this == o); }
  bool operator<(const Term& o) const;

  /// SPARQL surface syntax for this term (IRIs in <>, literals quoted,
  /// variables with '?', blank nodes with '_:').
  std::string ToString() const;
};

}  // namespace sparqlog::rdf

#endif  // SPARQLOG_RDF_TERM_H_
