#ifndef SPARQLOG_RDF_TERM_H_
#define SPARQLOG_RDF_TERM_H_

#include <string>

namespace sparqlog::rdf {

/// The kind of an RDF/SPARQL term.
///
/// Per the paper's preliminaries, RDF triples are <s, p, o> with
/// s in I ∪ B, p in I, o in I ∪ B ∪ L; SPARQL adds variables V.
enum class TermKind {
  kIri,       ///< An IRI (element of I).
  kLiteral,   ///< A literal (element of L), with optional datatype/lang.
  kBlank,     ///< A blank node (element of B).
  kVariable,  ///< A query variable (element of V), e.g. "?x".
};

/// A single RDF/SPARQL term. Value type; cheap to copy for typical
/// query-sized strings.
struct Term {
  TermKind kind = TermKind::kIri;
  /// IRI string, literal lexical form, blank node label, or variable name
  /// (without the leading '?').
  std::string value;
  /// For literals only: datatype IRI ("" if none).
  std::string datatype;
  /// For literals only: language tag ("" if none).
  std::string lang;

  static Term Iri(std::string v);
  static Term Literal(std::string lexical, std::string datatype = "",
                      std::string lang = "");
  static Term Blank(std::string label);
  static Term Var(std::string name);

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_literal() const { return kind == TermKind::kLiteral; }
  bool is_blank() const { return kind == TermKind::kBlank; }
  bool is_variable() const { return kind == TermKind::kVariable; }

  /// True for variables and blank nodes: the positions that form nodes of
  /// the canonical hypergraph (Section 5 of the paper).
  bool is_unknown() const { return is_variable() || is_blank(); }

  /// True for IRIs and literals (constants of the query).
  bool is_constant() const { return is_iri() || is_literal(); }

  bool operator==(const Term& o) const {
    return kind == o.kind && value == o.value && datatype == o.datatype &&
           lang == o.lang;
  }
  bool operator!=(const Term& o) const { return !(*this == o); }
  bool operator<(const Term& o) const;

  /// SPARQL surface syntax for this term (IRIs in <>, literals quoted,
  /// variables with '?', blank nodes with '_:').
  std::string ToString() const;
};

}  // namespace sparqlog::rdf

#endif  // SPARQLOG_RDF_TERM_H_
