#include "rdf/dictionary.h"

#include <cassert>

namespace sparqlog::rdf {

TermId Dictionary::Intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  // Deques of strings would keep views stable; with vector we must re-key
  // after reallocation. Instead, store the string first and key the map by
  // the stable string_view into the (never-shrunk) element. vector
  // reallocation moves the std::string objects but small-string contents
  // move with them, so views into the character buffer of *large* strings
  // stay valid while small-string views do not. To stay safe we rebuild
  // views from the stored strings after growth.
  bool will_grow = strings_.size() == strings_.capacity();
  strings_.emplace_back(s);
  TermId id = static_cast<TermId>(strings_.size() - 1);
  if (will_grow) {
    index_.clear();
    for (TermId i = 1; i < strings_.size(); ++i) {
      index_.emplace(strings_[i], i);
    }
  } else {
    index_.emplace(strings_.back(), id);
  }
  return id;
}

TermId Dictionary::Lookup(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? 0 : it->second;
}

const std::string& Dictionary::Resolve(TermId id) const {
  assert(id > 0 && id < strings_.size());
  return strings_[id];
}

}  // namespace sparqlog::rdf
