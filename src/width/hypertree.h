#ifndef SPARQLOG_WIDTH_HYPERTREE_H_
#define SPARQLOG_WIDTH_HYPERTREE_H_

#include <cstdint>
#include <vector>

#include "graph/hypergraph.h"
#include "util/budget.h"

namespace sparqlog::width {

/// Result of a generalized hypertree width computation.
struct GhwResult {
  /// The smallest k <= max_k admitting a generalized hypertree
  /// decomposition of width k, or max_k + 1 if none was found.
  int width = 0;
  /// Number of nodes in the decomposition found (Section 6.2 uses this
  /// as a proxy for how well caching can be exploited [18]). For
  /// width-1 components this equals the number of hyperedges.
  int decomposition_nodes = 0;
  /// False if the search was truncated (never for query-sized inputs).
  bool exact = true;
  /// True if a step budget ran out mid-search; `width` is then only the
  /// trivial max_k + 1 bound and the query belongs in the abandoned
  /// bucket, not in any width class.
  bool abandoned = false;
};

/// Recycled working state for the bitset GHW path (hypergraphs of
/// <= 64 nodes and <= 64 edges — every query hypergraph the paper
/// measures). Larger inputs use the generic set-based search.
struct GhwScratch {
  std::vector<uint64_t> edge_masks;  // vertex mask per hyperedge
  std::vector<uint64_t> gyo_masks;   // GYO working copy
};

/// Computes the generalized hypertree width of `hg`, trying k = 1 (GYO
/// reduction / alpha-acyclicity) and then a det-k-decomp-style exact
/// search over <= k-edge separators for k = 2..max_k, in the spirit of
/// the detkdecomp tool the paper uses [10]. Hypergraphs with <= 64
/// nodes and <= 64 edges run entirely on vertex/edge bitsets (masked
/// GYO, mask-pruned separator covers, mask-keyed memo); the scratch
/// overload reuses the mask buffers across queries.
///
/// `budget` (optional) bounds the separator search: one step per
/// TrySeparators/CheckSeparator call. On exhaustion the search unwinds
/// without memoizing partial answers and the result is marked
/// `abandoned` — deterministically for a given hypergraph and limit,
/// since the enumeration order is fixed.
GhwResult GeneralizedHypertreeWidth(const graph::Hypergraph& hg,
                                    GhwScratch& scratch, int max_k = 4,
                                    util::StepBudget* budget = nullptr);
GhwResult GeneralizedHypertreeWidth(const graph::Hypergraph& hg,
                                    int max_k = 4,
                                    util::StepBudget* budget = nullptr);

}  // namespace sparqlog::width

#endif  // SPARQLOG_WIDTH_HYPERTREE_H_
