#include "width/treewidth.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace sparqlog::width {

using graph::Graph;

namespace {

/// Series-parallel reduction on an adjacency-set copy: returns true iff
/// the graph reduces to nothing (treewidth <= 2).
bool ReducesToEmpty(std::vector<std::set<int>> adj) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t v = 0; v < adj.size(); ++v) {
      size_t deg = adj[v].size();
      if (deg == 0) continue;
      if (deg == 1) {
        int u = *adj[v].begin();
        adj[static_cast<size_t>(u)].erase(static_cast<int>(v));
        adj[v].clear();
        changed = true;
      } else if (deg == 2) {
        auto it = adj[v].begin();
        int a = *it++;
        int b = *it;
        adj[static_cast<size_t>(a)].erase(static_cast<int>(v));
        adj[static_cast<size_t>(b)].erase(static_cast<int>(v));
        adj[v].clear();
        adj[static_cast<size_t>(a)].insert(b);
        adj[static_cast<size_t>(b)].insert(a);
        changed = true;
      }
    }
  }
  for (const auto& neighbors : adj) {
    if (!neighbors.empty()) return false;
  }
  return true;
}

/// Treewidth-preserving kernelization for graphs of treewidth >= 2:
/// repeatedly delete degree-<=1 vertices and suppress degree-2 vertices.
/// Returns the kernel's adjacency sets over surviving vertices only.
std::vector<std::set<int>> Kernelize(const Graph& g) {
  std::vector<std::set<int>> adj(static_cast<size_t>(g.num_nodes()));
  for (int v = 0; v < g.num_nodes(); ++v) {
    adj[static_cast<size_t>(v)] = g.Neighbors(v);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t v = 0; v < adj.size(); ++v) {
      size_t deg = adj[v].size();
      if (deg == 1) {
        int u = *adj[v].begin();
        adj[static_cast<size_t>(u)].erase(static_cast<int>(v));
        adj[v].clear();
        changed = true;
      } else if (deg == 2) {
        auto it = adj[v].begin();
        int a = *it++;
        int b = *it;
        adj[static_cast<size_t>(a)].erase(static_cast<int>(v));
        adj[static_cast<size_t>(b)].erase(static_cast<int>(v));
        adj[v].clear();
        adj[static_cast<size_t>(a)].insert(b);
        adj[static_cast<size_t>(b)].insert(a);
        changed = true;
      }
    }
  }
  // Compact to surviving vertices.
  std::vector<int> remap(adj.size(), -1);
  int next = 0;
  for (size_t v = 0; v < adj.size(); ++v) {
    if (!adj[v].empty()) remap[v] = next++;
  }
  std::vector<std::set<int>> kernel(static_cast<size_t>(next));
  for (size_t v = 0; v < adj.size(); ++v) {
    if (remap[v] < 0) continue;
    for (int w : adj[v]) {
      kernel[static_cast<size_t>(remap[v])].insert(
          remap[static_cast<size_t>(w)]);
    }
  }
  return kernel;
}

/// Exact treewidth by branch-and-bound over elimination orderings with
/// memoization (the fill-in after eliminating a vertex set is independent
/// of the order, so memoizing on the eliminated set is sound).
/// Operates on bitset adjacency; n <= 64.
class EliminationSolver {
 public:
  explicit EliminationSolver(std::vector<uint64_t> adj)
      : n_(static_cast<int>(adj.size())), adj_(std::move(adj)) {}

  int Solve() {
    uint64_t all = n_ == 64 ? ~0ULL : ((1ULL << n_) - 1);
    int upper = MinFillUpperBound();
    best_ = upper;
    Search(adj_, all, 0);
    return best_;
  }

 private:
  int MinFillUpperBound() {
    std::vector<uint64_t> adj = adj_;
    uint64_t alive = n_ == 64 ? ~0ULL : ((1ULL << n_) - 1);
    int width = 0;
    while (alive != 0) {
      int best_v = -1;
      long best_fill = -1;
      for (int v = 0; v < n_; ++v) {
        if (((alive >> v) & 1) == 0) continue;
        uint64_t nb = adj[static_cast<size_t>(v)] & alive;
        long fill = 0;
        for (int a = 0; a < n_; ++a) {
          if (((nb >> a) & 1) == 0) continue;
          uint64_t missing = nb & ~adj[static_cast<size_t>(a)];
          missing &= ~(1ULL << a);
          fill += std::popcount(missing);
        }
        if (best_fill < 0 || fill < best_fill) {
          best_fill = fill;
          best_v = v;
        }
      }
      uint64_t nb = adj[static_cast<size_t>(best_v)] & alive;
      width = std::max(width, std::popcount(nb));
      Eliminate(adj, best_v, nb);
      alive &= ~(1ULL << best_v);
    }
    return width;
  }

  static void Eliminate(std::vector<uint64_t>& adj, int v, uint64_t nb) {
    for (int a = 0; a < 64; ++a) {
      if (((nb >> a) & 1) == 0) continue;
      adj[static_cast<size_t>(a)] |= nb;
      adj[static_cast<size_t>(a)] &= ~(1ULL << a);
      adj[static_cast<size_t>(a)] &= ~(1ULL << v);
    }
  }

  void Search(const std::vector<uint64_t>& adj, uint64_t alive,
              int width_so_far) {
    if (alive == 0) {
      best_ = std::min(best_, width_so_far);
      return;
    }
    if (width_so_far >= best_) return;
    auto it = memo_.find(alive);
    if (it != memo_.end() && it->second <= width_so_far) return;
    memo_[alive] = width_so_far;

    // Order candidates by current degree (cheapest first).
    std::vector<std::pair<int, int>> candidates;
    for (int v = 0; v < n_; ++v) {
      if (((alive >> v) & 1) == 0) continue;
      int deg = std::popcount(adj[static_cast<size_t>(v)] & alive);
      // Simplicial vertices can always be eliminated first; detect the
      // easy case degree <= 1.
      candidates.emplace_back(deg, v);
    }
    std::sort(candidates.begin(), candidates.end());
    for (const auto& [deg, v] : candidates) {
      int width = std::max(width_so_far, deg);
      if (width >= best_) continue;
      std::vector<uint64_t> next = adj;
      Eliminate(next, v, adj[static_cast<size_t>(v)] & alive);
      Search(next, alive & ~(1ULL << v), width);
    }
  }

  int n_;
  std::vector<uint64_t> adj_;
  int best_ = 0;
  std::unordered_map<uint64_t, int> memo_;
};

}  // namespace

bool TreewidthAtMost2(const Graph& g) {
  std::vector<std::set<int>> adj(static_cast<size_t>(g.num_nodes()));
  for (int v = 0; v < g.num_nodes(); ++v) {
    adj[static_cast<size_t>(v)] = g.Neighbors(v);
  }
  return ReducesToEmpty(std::move(adj));
}

TreewidthResult Treewidth(const Graph& g) {
  TreewidthResult result;
  if (g.num_nodes() == 0 || g.num_proper_edges() == 0) {
    result.width = 0;
    return result;
  }
  if (g.IsAcyclic(/*ignore_self_loops=*/true)) {
    result.width = 1;
    return result;
  }
  if (TreewidthAtMost2(g)) {
    result.width = 2;
    return result;
  }
  // Kernelize; kernel width >= 3, min degree >= 3.
  std::vector<std::set<int>> kernel = Kernelize(g);
  if (kernel.size() > 64) {
    // Fall back to the heuristic bound. Query graphs never get here.
    result.exact = false;
    result.width = static_cast<int>(kernel.size());
    return result;
  }
  std::vector<uint64_t> adj(kernel.size(), 0);
  for (size_t v = 0; v < kernel.size(); ++v) {
    for (int w : kernel[v]) adj[v] |= 1ULL << w;
  }
  EliminationSolver solver(std::move(adj));
  result.width = solver.Solve();
  return result;
}

}  // namespace sparqlog::width
