#include "width/treewidth.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace sparqlog::width {

using graph::Graph;

namespace {

// ---------------------------------------------------------------------------
// Series-parallel reduction (remove degree-<=1, suppress degree-2),
// driven by a restart-free worklist: a vertex enters the worklist when
// its degree drops into {1, 2}; stale entries are re-checked on pop.
// Degrees never increase under either rule, so every vertex is reduced
// at most once and total work is linear in edges touched — unlike the
// pre-change implementation, which re-scanned all n vertices after
// every change (quadratic on long chains of enabling reductions).
// The reduction is confluent for both uses: emptiness (treewidth <= 2)
// and, when the input has treewidth >= 3, the kernel's exact treewidth.
// ---------------------------------------------------------------------------

/// Reduces `masks` (adjacency bitsets over < 64 nodes, self-loops
/// excluded) in place; a removed/suppressed vertex ends with mask 0.
void ReduceSmall(std::vector<uint64_t>& masks, int n,
                 std::vector<int>& worklist) {
  worklist.clear();
  for (int v = 0; v < n; ++v) {
    int d = std::popcount(masks[static_cast<size_t>(v)]);
    if (d == 1 || d == 2) worklist.push_back(v);
  }
  auto maybe_push = [&](int u) {
    int d = std::popcount(masks[static_cast<size_t>(u)]);
    if (d == 1 || d == 2) worklist.push_back(u);
  };
  while (!worklist.empty()) {
    int v = worklist.back();
    worklist.pop_back();
    uint64_t m = masks[static_cast<size_t>(v)];
    int d = std::popcount(m);
    if (d == 1) {
      int u = std::countr_zero(m);
      masks[static_cast<size_t>(u)] &= ~(1ULL << v);
      masks[static_cast<size_t>(v)] = 0;
      maybe_push(u);
    } else if (d == 2) {
      int a = std::countr_zero(m);
      int b = std::countr_zero(m & (m - 1));
      masks[static_cast<size_t>(a)] &= ~(1ULL << v);
      masks[static_cast<size_t>(b)] &= ~(1ULL << v);
      masks[static_cast<size_t>(v)] = 0;
      masks[static_cast<size_t>(a)] |= 1ULL << b;
      masks[static_cast<size_t>(b)] |= 1ULL << a;
      maybe_push(a);
      maybe_push(b);
    }
    // d == 0 (already gone) or d > 2 (stale entry): nothing to do.
  }
}

/// Large-graph twin of ReduceSmall over sorted adjacency vectors.
void ReduceLarge(std::vector<std::vector<int>>& adj,
                 std::vector<int>& worklist) {
  int n = static_cast<int>(adj.size());
  worklist.clear();
  for (int v = 0; v < n; ++v) {
    size_t d = adj[static_cast<size_t>(v)].size();
    if (d == 1 || d == 2) worklist.push_back(v);
  }
  auto erase_from = [&adj](int u, int v) {
    auto& a = adj[static_cast<size_t>(u)];
    a.erase(std::lower_bound(a.begin(), a.end(), v));
  };
  auto insert_into = [&adj](int u, int v) {
    auto& a = adj[static_cast<size_t>(u)];
    auto it = std::lower_bound(a.begin(), a.end(), v);
    if (it == a.end() || *it != v) a.insert(it, v);
  };
  auto maybe_push = [&](int u) {
    size_t d = adj[static_cast<size_t>(u)].size();
    if (d == 1 || d == 2) worklist.push_back(u);
  };
  while (!worklist.empty()) {
    int v = worklist.back();
    worklist.pop_back();
    auto& av = adj[static_cast<size_t>(v)];
    size_t d = av.size();
    if (d == 1) {
      int u = av[0];
      erase_from(u, v);
      av.clear();
      maybe_push(u);
    } else if (d == 2) {
      int a = av[0];
      int b = av[1];
      erase_from(a, v);
      erase_from(b, v);
      av.clear();
      insert_into(a, b);
      insert_into(b, a);
      maybe_push(a);
      maybe_push(b);
    }
  }
}

/// Number of connected components over bitset adjacency (n <= 64).
int CountComponentsSmall(const std::vector<uint64_t>& masks, int n) {
  uint64_t unseen = n == 64 ? ~0ULL : ((1ULL << n) - 1);
  int comps = 0;
  while (unseen != 0) {
    ++comps;
    uint64_t comp = unseen & (~unseen + 1);  // lowest unseen bit
    uint64_t frontier = comp;
    while (frontier != 0) {
      uint64_t next = 0;
      uint64_t f = frontier;
      while (f != 0) {
        next |= masks[static_cast<size_t>(std::countr_zero(f))];
        f &= f - 1;
      }
      frontier = next & ~comp;
      comp |= frontier;
    }
    unseen &= ~comp;
  }
  return comps;
}

/// Exact treewidth by branch-and-bound over elimination orderings with
/// memoization (the fill-in after eliminating a vertex set is independent
/// of the order, so memoizing on the eliminated set is sound).
/// Operates on bitset adjacency; n <= 64.
class EliminationSolver {
 public:
  /// Borrows `adj` (the kernel masks in the caller's scratch); mutation
  /// happens on per-step local copies only.
  explicit EliminationSolver(const std::vector<uint64_t>& adj,
                             util::StepBudget* budget = nullptr)
      : n_(static_cast<int>(adj.size())), adj_(adj), budget_(budget) {}

  int Solve() {
    uint64_t all = n_ == 64 ? ~0ULL : ((1ULL << n_) - 1);
    int upper = MinFillUpperBound();
    best_ = upper;
    Search(adj_, all, 0);
    return best_;
  }

  bool aborted() const { return budget_ != nullptr && budget_->exhausted(); }

 private:
  int MinFillUpperBound() {
    std::vector<uint64_t> adj = adj_;
    uint64_t alive = n_ == 64 ? ~0ULL : ((1ULL << n_) - 1);
    int width = 0;
    while (alive != 0) {
      int best_v = -1;
      long best_fill = -1;
      for (int v = 0; v < n_; ++v) {
        if (((alive >> v) & 1) == 0) continue;
        uint64_t nb = adj[static_cast<size_t>(v)] & alive;
        long fill = 0;
        for (int a = 0; a < n_; ++a) {
          if (((nb >> a) & 1) == 0) continue;
          uint64_t missing = nb & ~adj[static_cast<size_t>(a)];
          missing &= ~(1ULL << a);
          fill += std::popcount(missing);
        }
        if (best_fill < 0 || fill < best_fill) {
          best_fill = fill;
          best_v = v;
        }
      }
      uint64_t nb = adj[static_cast<size_t>(best_v)] & alive;
      width = std::max(width, std::popcount(nb));
      Eliminate(adj, best_v, nb);
      alive &= ~(1ULL << best_v);
    }
    return width;
  }

  static void Eliminate(std::vector<uint64_t>& adj, int v, uint64_t nb) {
    for (int a = 0; a < 64; ++a) {
      if (((nb >> a) & 1) == 0) continue;
      adj[static_cast<size_t>(a)] |= nb;
      adj[static_cast<size_t>(a)] &= ~(1ULL << a);
      adj[static_cast<size_t>(a)] &= ~(1ULL << v);
    }
  }

  void Search(const std::vector<uint64_t>& adj, uint64_t alive,
              int width_so_far) {
    if (budget_ != nullptr && !budget_->Charge()) return;
    if (alive == 0) {
      best_ = std::min(best_, width_so_far);
      return;
    }
    if (width_so_far >= best_) return;
    auto it = memo_.find(alive);
    if (it != memo_.end() && it->second <= width_so_far) return;
    memo_[alive] = width_so_far;

    // Order candidates by current degree (cheapest first).
    std::vector<std::pair<int, int>> candidates;
    for (int v = 0; v < n_; ++v) {
      if (((alive >> v) & 1) == 0) continue;
      int deg = std::popcount(adj[static_cast<size_t>(v)] & alive);
      candidates.emplace_back(deg, v);
    }
    std::sort(candidates.begin(), candidates.end());
    for (const auto& [deg, v] : candidates) {
      int width = std::max(width_so_far, deg);
      if (width >= best_) continue;
      std::vector<uint64_t> next = adj;
      Eliminate(next, v, adj[static_cast<size_t>(v)] & alive);
      Search(next, alive & ~(1ULL << v), width);
    }
  }

  int n_;
  const std::vector<uint64_t>& adj_;
  util::StepBudget* budget_;
  int best_ = 0;
  std::unordered_map<uint64_t, int> memo_;
};

void CopyMasks(const Graph& g, std::vector<uint64_t>& masks) {
  int n = g.num_nodes();
  masks.resize(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) {
    masks[static_cast<size_t>(v)] = g.AdjacencyBits(v);
  }
}

void CopyAdj(const Graph& g, std::vector<std::vector<int>>& adj) {
  size_t n = static_cast<size_t>(g.num_nodes());
  if (adj.size() < n) adj.resize(n);
  for (size_t v = 0; v < n; ++v) {
    adj[v].clear();
    for (int w : g.Neighbors(static_cast<int>(v))) adj[v].push_back(w);
  }
  adj.resize(n);
}

}  // namespace

bool TreewidthAtMost2(const Graph& g, TreewidthScratch& s) {
  if (g.small()) {
    CopyMasks(g, s.masks);
    ReduceSmall(s.masks, g.num_nodes(), s.worklist);
    for (uint64_t m : s.masks) {
      if (m != 0) return false;
    }
    return true;
  }
  CopyAdj(g, s.adj);
  ReduceLarge(s.adj, s.worklist);
  for (const auto& a : s.adj) {
    if (!a.empty()) return false;
  }
  return true;
}

bool TreewidthAtMost2(const Graph& g) {
  TreewidthScratch scratch;
  return TreewidthAtMost2(g, scratch);
}

TreewidthResult Treewidth(const Graph& g, TreewidthScratch& s,
                          util::StepBudget* budget) {
  TreewidthResult result;
  int n = g.num_nodes();
  if (n == 0 || g.num_proper_edges() == 0) {
    result.width = 0;
    return result;
  }

  if (g.small()) {
    CopyMasks(g, s.masks);
    // Forest test without allocation: |E_proper| = |V| - #components.
    if (g.num_proper_edges() == n - CountComponentsSmall(s.masks, n)) {
      result.width = 1;
      return result;
    }
    // One reduction decides width <= 2 *and* produces the kernel:
    // surviving vertices have degree >= 3 and the reduction preserves
    // treewidth once it is known to be >= 2.
    ReduceSmall(s.masks, n, s.worklist);
    s.remap.assign(static_cast<size_t>(n), -1);
    int kernel_size = 0;
    for (int v = 0; v < n; ++v) {
      if (s.masks[static_cast<size_t>(v)] != 0) {
        s.remap[static_cast<size_t>(v)] = kernel_size++;
      }
    }
    if (kernel_size == 0) {
      result.width = 2;
      return result;
    }
    s.kernel_masks.assign(static_cast<size_t>(kernel_size), 0);
    for (int v = 0; v < n; ++v) {
      int nv = s.remap[static_cast<size_t>(v)];
      if (nv < 0) continue;
      uint64_t m = s.masks[static_cast<size_t>(v)];
      while (m != 0) {
        int w = std::countr_zero(m);
        m &= m - 1;
        s.kernel_masks[static_cast<size_t>(nv)] |=
            1ULL << s.remap[static_cast<size_t>(w)];
      }
    }
    EliminationSolver solver(s.kernel_masks, budget);
    result.width = solver.Solve();
    if (solver.aborted()) {
      result.exact = false;
      result.abandoned = true;
    }
    return result;
  }

  // Large graphs (> 64 nodes): vector-based reduction, then the bitset
  // solver if the kernel shrank below 64 nodes.
  if (g.IsAcyclic(/*ignore_self_loops=*/true)) {
    result.width = 1;
    return result;
  }
  CopyAdj(g, s.adj);
  ReduceLarge(s.adj, s.worklist);
  s.remap.assign(static_cast<size_t>(n), -1);
  int kernel_size = 0;
  for (int v = 0; v < n; ++v) {
    if (!s.adj[static_cast<size_t>(v)].empty()) {
      s.remap[static_cast<size_t>(v)] = kernel_size++;
    }
  }
  if (kernel_size == 0) {
    result.width = 2;
    return result;
  }
  if (kernel_size > 64) {
    // Fall back to the heuristic bound. Query graphs never get here.
    result.exact = false;
    result.width = kernel_size;
    return result;
  }
  s.kernel_masks.assign(static_cast<size_t>(kernel_size), 0);
  for (int v = 0; v < n; ++v) {
    int nv = s.remap[static_cast<size_t>(v)];
    if (nv < 0) continue;
    for (int w : s.adj[static_cast<size_t>(v)]) {
      s.kernel_masks[static_cast<size_t>(nv)] |=
          1ULL << s.remap[static_cast<size_t>(w)];
    }
  }
  EliminationSolver solver(s.kernel_masks, budget);
  result.width = solver.Solve();
  if (solver.aborted()) {
    result.exact = false;
    result.abandoned = true;
  }
  return result;
}

TreewidthResult Treewidth(const Graph& g) {
  TreewidthScratch scratch;
  return Treewidth(g, scratch);
}

}  // namespace sparqlog::width
