#ifndef SPARQLOG_WIDTH_TREEWIDTH_H_
#define SPARQLOG_WIDTH_TREEWIDTH_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/budget.h"

namespace sparqlog::width {

/// Result of a treewidth computation.
struct TreewidthResult {
  int width = 0;
  /// False only when the post-reduction kernel exceeded the exact
  /// solver's limits and a heuristic upper bound is reported. Does not
  /// happen for query-sized graphs.
  bool exact = true;
  /// True if a step budget ran out during the branch-and-bound search;
  /// `width` then holds the min-fill upper bound reached so far and the
  /// query belongs in the abandoned bucket.
  bool abandoned = false;
};

/// Recycled working state for Treewidth/TreewidthAtMost2. Graphs of
/// <= 64 nodes (every query graph) kernelize entirely inside the mask
/// buffer — zero heap traffic after warmup; larger graphs use the
/// sorted-vector buffers.
struct TreewidthScratch {
  std::vector<uint64_t> masks;           // small path: adjacency copies
  std::vector<int> worklist;             // restart-free reduction worklist
  std::vector<std::vector<int>> adj;     // large path: adjacency copies
  std::vector<uint64_t> kernel_masks;    // compacted kernel for the solver
  std::vector<int> remap;
};

/// Exact treewidth of `g` (self-loops ignored; they do not affect
/// treewidth).
///
/// Pipeline (Section 6.2 of the paper needs to separate width 1 / 2 / 3):
///  1. forests have width <= 1;
///  2. the series-parallel reduction (remove degree-<=1, suppress
///     degree-2) decides width <= 2 — driven by a restart-free worklist,
///     so a long chain reduces in linear time;
///  3. otherwise the reduction's kernel (treewidth-preserving for width
///     >= 2, min degree >= 3) is solved exactly by branch-and-bound over
///     elimination orderings with memoization, min-fill upper bound and
///     degeneracy lower bound (QuickBB-style).
///
/// `budget` (optional) bounds the branch-and-bound search (one step per
/// Search node); the linear reduction phases are never charged. On
/// exhaustion the result is marked `abandoned` — deterministically for
/// a given graph and limit, since the elimination order is fixed.
TreewidthResult Treewidth(const graph::Graph& g, TreewidthScratch& scratch,
                          util::StepBudget* budget = nullptr);
TreewidthResult Treewidth(const graph::Graph& g);

/// Decides treewidth <= 2 via the series-parallel reduction alone
/// (linear; used by the shape pipeline before full computation).
bool TreewidthAtMost2(const graph::Graph& g, TreewidthScratch& scratch);
bool TreewidthAtMost2(const graph::Graph& g);

}  // namespace sparqlog::width

#endif  // SPARQLOG_WIDTH_TREEWIDTH_H_
