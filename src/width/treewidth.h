#ifndef SPARQLOG_WIDTH_TREEWIDTH_H_
#define SPARQLOG_WIDTH_TREEWIDTH_H_

#include "graph/graph.h"

namespace sparqlog::width {

/// Result of a treewidth computation.
struct TreewidthResult {
  int width = 0;
  /// False only when the post-reduction kernel exceeded the exact
  /// solver's limits and a heuristic upper bound is reported. Does not
  /// happen for query-sized graphs.
  bool exact = true;
};

/// Exact treewidth of `g` (self-loops ignored; they do not affect
/// treewidth).
///
/// Pipeline (Section 6.2 of the paper needs to separate width 1 / 2 / 3):
///  1. forests have width <= 1;
///  2. the series-parallel reduction (remove degree-<=1, contract
///     degree-2) decides width <= 2;
///  3. otherwise the reduction kernel (treewidth-preserving for width
///     >= 2) is solved exactly by branch-and-bound over elimination
///     orderings with memoization, min-fill upper bound and degeneracy
///     lower bound (QuickBB-style).
TreewidthResult Treewidth(const graph::Graph& g);

/// Decides treewidth <= 2 via the series-parallel reduction alone
/// (linear-ish; used by the shape pipeline before full computation).
bool TreewidthAtMost2(const graph::Graph& g);

}  // namespace sparqlog::width

#endif  // SPARQLOG_WIDTH_TREEWIDTH_H_
