#include "width/hypertree.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <vector>

namespace sparqlog::width {

using graph::Hypergraph;

namespace {

/// Exact decider for "this component has a generalized hypertree
/// decomposition of width <= k", following the recursive scheme of
/// det-k-decomp: pick a separator of <= k hyperedges covering the
/// connector, recurse on the remaining connected pieces.
class DetKDecomp {
 public:
  DetKDecomp(const Hypergraph& hg, int k) : hg_(hg), k_(k) {}

  /// Tries to decompose the sub-hypergraph induced by `edge_ids`; the
  /// top-level call uses an empty connector. Returns the number of
  /// decomposition nodes on success.
  std::optional<int> Decompose(const std::vector<int>& edge_ids,
                               const std::set<int>& connector) {
    auto key = std::make_pair(edge_ids, connector);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    std::optional<int> result = DecomposeUncached(edge_ids, connector);
    memo_.emplace(std::move(key), result);
    return result;
  }

 private:
  std::set<int> VerticesOf(const std::vector<int>& edge_ids) const {
    std::set<int> out;
    for (int e : edge_ids) {
      const auto& edge = hg_.edges()[static_cast<size_t>(e)];
      out.insert(edge.begin(), edge.end());
    }
    return out;
  }

  std::optional<int> DecomposeUncached(const std::vector<int>& edge_ids,
                                       const std::set<int>& connector) {
    std::set<int> comp_vertices = VerticesOf(edge_ids);
    // Candidate separator edges: any edge of the hypergraph that touches
    // the component or helps cover the connector.
    std::vector<int> candidates;
    for (int e = 0; e < hg_.num_edges(); ++e) {
      const auto& edge = hg_.edges()[static_cast<size_t>(e)];
      bool touches = false;
      for (int v : edge) {
        if (comp_vertices.count(v) > 0 || connector.count(v) > 0) {
          touches = true;
          break;
        }
      }
      if (touches) candidates.push_back(e);
    }

    std::vector<int> chosen;
    return TrySeparators(edge_ids, connector, comp_vertices, candidates, 0,
                         chosen);
  }

  std::optional<int> TrySeparators(const std::vector<int>& edge_ids,
                                   const std::set<int>& connector,
                                   const std::set<int>& comp_vertices,
                                   const std::vector<int>& candidates,
                                   size_t start, std::vector<int>& chosen) {
    if (!chosen.empty()) {
      std::optional<int> nodes =
          CheckSeparator(edge_ids, connector, comp_vertices, chosen);
      if (nodes.has_value()) return nodes;
    }
    if (chosen.size() == static_cast<size_t>(k_)) return std::nullopt;
    for (size_t i = start; i < candidates.size(); ++i) {
      chosen.push_back(candidates[i]);
      std::optional<int> nodes = TrySeparators(
          edge_ids, connector, comp_vertices, candidates, i + 1, chosen);
      chosen.pop_back();
      if (nodes.has_value()) return nodes;
    }
    return std::nullopt;
  }

  std::optional<int> CheckSeparator(const std::vector<int>& edge_ids,
                                    const std::set<int>& connector,
                                    const std::set<int>& comp_vertices,
                                    const std::vector<int>& separator) {
    std::set<int> bag;
    for (int e : separator) {
      const auto& edge = hg_.edges()[static_cast<size_t>(e)];
      bag.insert(edge.begin(), edge.end());
    }
    // The bag must cover the connector.
    for (int v : connector) {
      if (bag.count(v) == 0) return std::nullopt;
    }
    // Progress condition: the bag must cover at least one component
    // vertex outside the connector, so every child subproblem is
    // strictly smaller and the recursion terminates.
    bool covers_new = false;
    for (int v : comp_vertices) {
      if (connector.count(v) == 0 && bag.count(v) > 0) {
        covers_new = true;
        break;
      }
    }
    if (!covers_new) return std::nullopt;
    // Split the remaining vertices into connected sub-components
    // (connectivity via the component's edges minus bag vertices).
    std::set<int> remaining;
    for (int v : comp_vertices) {
      if (bag.count(v) == 0) remaining.insert(v);
    }
    int total_nodes = 1;
    std::set<int> assigned;
    for (int seed : remaining) {
      if (assigned.count(seed) > 0) continue;
      // Flood-fill one sub-component.
      std::set<int> comp{seed};
      std::vector<int> frontier{seed};
      std::set<int> comp_edges;
      while (!frontier.empty()) {
        int v = frontier.back();
        frontier.pop_back();
        for (int e : edge_ids) {
          const auto& edge = hg_.edges()[static_cast<size_t>(e)];
          if (edge.count(v) == 0) continue;
          comp_edges.insert(e);
          for (int w : edge) {
            if (bag.count(w) > 0 || comp.count(w) > 0) continue;
            comp.insert(w);
            frontier.push_back(w);
          }
        }
      }
      assigned.insert(comp.begin(), comp.end());
      // Sub-connector: bag vertices sharing an edge with the component.
      std::set<int> sub_connector;
      for (int e : comp_edges) {
        const auto& edge = hg_.edges()[static_cast<size_t>(e)];
        for (int w : edge) {
          if (bag.count(w) > 0) sub_connector.insert(w);
        }
      }
      std::vector<int> sub_edges(comp_edges.begin(), comp_edges.end());
      std::optional<int> sub_nodes = Decompose(sub_edges, sub_connector);
      if (!sub_nodes.has_value()) return std::nullopt;
      total_nodes += *sub_nodes;
    }
    // Edges fully inside the bag are covered by this node.
    return total_nodes;
  }

  const Hypergraph& hg_;
  int k_;
  std::map<std::pair<std::vector<int>, std::set<int>>, std::optional<int>>
      memo_;
};

}  // namespace

GhwResult GeneralizedHypertreeWidth(const Hypergraph& hg, int max_k) {
  GhwResult result;
  if (hg.num_edges() == 0) return result;

  if (hg.IsAlphaAcyclic()) {
    result.width = 1;
    result.decomposition_nodes = hg.num_edges();
    return result;
  }

  std::vector<int> all_edges(static_cast<size_t>(hg.num_edges()));
  for (int e = 0; e < hg.num_edges(); ++e) {
    all_edges[static_cast<size_t>(e)] = e;
  }
  for (int k = 2; k <= max_k; ++k) {
    DetKDecomp solver(hg, k);
    std::optional<int> nodes = solver.Decompose(all_edges, {});
    if (nodes.has_value()) {
      result.width = k;
      result.decomposition_nodes = *nodes;
      return result;
    }
  }
  result.width = max_k + 1;
  result.exact = false;
  return result;
}

}  // namespace sparqlog::width
