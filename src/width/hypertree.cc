#include "width/hypertree.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sparqlog::width {

using graph::Hypergraph;

namespace {

// ---------------------------------------------------------------------------
// Bitset path: vertices and edge ids both fit in one 64-bit word, so
// components, bags, connectors, separators, and the memo key are all
// plain masks. Candidate and sub-component enumeration is ascending by
// id — the same order as the pre-change set-based search — so the
// separator found first (and with it decomposition_nodes) is identical.
// ---------------------------------------------------------------------------

/// GYO reduction over vertex masks: alpha-acyclic iff all edges empty.
bool IsAlphaAcyclicBits(std::vector<uint64_t>& masks) {
  bool changed = true;
  while (changed) {
    changed = false;
    // Nodes occurring in exactly one live edge.
    uint64_t seen_once = 0, seen_twice = 0;
    for (uint64_t m : masks) {
      seen_twice |= seen_once & m;
      seen_once |= m;
    }
    uint64_t singles = seen_once & ~seen_twice;
    if (singles != 0) {
      for (uint64_t& m : masks) {
        uint64_t next = m & ~singles;
        if (next != m) {
          m = next;
          changed = true;
        }
      }
    }
    // Edges contained in another live edge (ties broken by index).
    for (size_t i = 0; i < masks.size(); ++i) {
      if (masks[i] == 0) continue;
      for (size_t j = 0; j < masks.size(); ++j) {
        if (i == j || masks[j] == 0) continue;
        if ((masks[i] & ~masks[j]) == 0 &&
            (masks[i] != masks[j] || i > j)) {
          masks[i] = 0;
          changed = true;
          break;
        }
      }
    }
  }
  for (uint64_t m : masks) {
    if (m != 0) return false;
  }
  return true;
}

struct MaskPairHash {
  size_t operator()(const std::pair<uint64_t, uint64_t>& p) const {
    uint64_t h = p.first * 0x9E3779B97F4A7C15ULL;
    h ^= p.second + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

/// Exact decider for "this component has a generalized hypertree
/// decomposition of width <= k" over bitsets, following the recursive
/// det-k-decomp scheme: pick a separator of <= k hyperedges covering
/// the connector, recurse on the remaining connected pieces.
class BitDetKDecomp {
 public:
  BitDetKDecomp(const std::vector<uint64_t>& edge_masks, int k,
                util::StepBudget* budget)
      : edges_(edge_masks),
        m_(static_cast<int>(edge_masks.size())),
        k_(k),
        budget_(budget) {}

  std::optional<int> Decompose(uint64_t edge_ids, uint64_t connector) {
    if (budget_ != nullptr && budget_->exhausted()) return std::nullopt;
    auto key = std::make_pair(edge_ids, connector);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    std::optional<int> result = DecomposeUncached(edge_ids, connector);
    // A result computed under an exhausted budget reflects a truncated
    // search; memoizing it would poison later (or resumed) lookups.
    if (budget_ == nullptr || !budget_->exhausted()) memo_.emplace(key, result);
    return result;
  }

 private:
  uint64_t VerticesOf(uint64_t edge_ids) const {
    uint64_t out = 0;
    while (edge_ids != 0) {
      out |= edges_[static_cast<size_t>(std::countr_zero(edge_ids))];
      edge_ids &= edge_ids - 1;
    }
    return out;
  }

  std::optional<int> DecomposeUncached(uint64_t edge_ids,
                                       uint64_t connector) {
    uint64_t comp_vertices = VerticesOf(edge_ids);
    // Candidate separator edges: any edge of the hypergraph that touches
    // the component or helps cover the connector.
    uint64_t candidates = 0;
    for (int e = 0; e < m_; ++e) {
      if ((edges_[static_cast<size_t>(e)] & (comp_vertices | connector)) !=
          0) {
        candidates |= 1ULL << e;
      }
    }
    return TrySeparators(edge_ids, connector, comp_vertices, candidates,
                         /*start=*/0, /*depth=*/0, /*bag=*/0);
  }

  std::optional<int> TrySeparators(uint64_t edge_ids, uint64_t connector,
                                   uint64_t comp_vertices,
                                   uint64_t candidates, int start, int depth,
                                   uint64_t bag) {
    if (budget_ != nullptr && !budget_->Charge()) return std::nullopt;
    if (depth > 0) {
      std::optional<int> nodes =
          CheckSeparator(edge_ids, connector, comp_vertices, bag);
      if (nodes.has_value()) return nodes;
    }
    if (depth == k_) return std::nullopt;
    // Enumerate remaining candidates ascending from `start`, exactly
    // like the set-based search's index loop.
    uint64_t below = start >= 64 ? ~0ULL : ((1ULL << start) - 1);
    uint64_t rest = candidates & ~below;
    while (rest != 0) {
      int e = std::countr_zero(rest);
      rest &= rest - 1;
      std::optional<int> nodes = TrySeparators(
          edge_ids, connector, comp_vertices, candidates, e + 1, depth + 1,
          bag | edges_[static_cast<size_t>(e)]);
      if (nodes.has_value()) return nodes;
    }
    return std::nullopt;
  }

  std::optional<int> CheckSeparator(uint64_t edge_ids, uint64_t connector,
                                    uint64_t comp_vertices, uint64_t bag) {
    if (budget_ != nullptr && !budget_->Charge()) return std::nullopt;
    // The bag must cover the connector.
    if ((connector & ~bag) != 0) return std::nullopt;
    // Progress condition: the bag must cover at least one component
    // vertex outside the connector, so every child subproblem is
    // strictly smaller and the recursion terminates.
    if ((comp_vertices & ~connector & bag) == 0) return std::nullopt;
    // Split the remaining vertices into connected sub-components
    // (connectivity via the component's edges minus bag vertices).
    uint64_t remaining = comp_vertices & ~bag;
    int total_nodes = 1;
    uint64_t assigned = 0;
    uint64_t seeds = remaining;
    while (seeds != 0) {
      int seed = std::countr_zero(seeds);
      seeds &= seeds - 1;
      if ((assigned >> seed) & 1) continue;
      // Flood-fill one sub-component.
      uint64_t comp = 1ULL << seed;
      uint64_t frontier = comp;
      while (frontier != 0) {
        uint64_t next = 0;
        uint64_t ids = edge_ids;
        while (ids != 0) {
          int e = std::countr_zero(ids);
          ids &= ids - 1;
          if ((edges_[static_cast<size_t>(e)] & frontier) != 0) {
            next |= edges_[static_cast<size_t>(e)];
          }
        }
        frontier = next & ~bag & ~comp;
        comp |= frontier;
      }
      assigned |= comp;
      // Edges and sub-connector of this component.
      uint64_t comp_edges = 0;
      uint64_t sub_connector = 0;
      uint64_t ids = edge_ids;
      while (ids != 0) {
        int e = std::countr_zero(ids);
        ids &= ids - 1;
        if ((edges_[static_cast<size_t>(e)] & comp) != 0) {
          comp_edges |= 1ULL << e;
          sub_connector |= edges_[static_cast<size_t>(e)] & bag;
        }
      }
      std::optional<int> sub_nodes = Decompose(comp_edges, sub_connector);
      if (!sub_nodes.has_value()) return std::nullopt;
      total_nodes += *sub_nodes;
    }
    // Edges fully inside the bag are covered by this node.
    return total_nodes;
  }

  const std::vector<uint64_t>& edges_;
  int m_;
  int k_;
  util::StepBudget* budget_;
  std::unordered_map<std::pair<uint64_t, uint64_t>, std::optional<int>,
                     MaskPairHash>
      memo_;
};

// ---------------------------------------------------------------------------
// Generic fallback (> 64 nodes or > 64 edges; never query-sized
// inputs): the pre-change set-based det-k-decomp, fed from the CSR
// hypergraph.
// ---------------------------------------------------------------------------

class SetDetKDecomp {
 public:
  SetDetKDecomp(const std::vector<std::set<int>>& edges, int k,
                util::StepBudget* budget)
      : edges_(edges), k_(k), budget_(budget) {}

  std::optional<int> Decompose(const std::vector<int>& edge_ids,
                               const std::set<int>& connector) {
    if (budget_ != nullptr && budget_->exhausted()) return std::nullopt;
    auto key = std::make_pair(edge_ids, connector);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    std::optional<int> result = DecomposeUncached(edge_ids, connector);
    if (budget_ == nullptr || !budget_->exhausted()) {
      memo_.emplace(std::move(key), result);
    }
    return result;
  }

 private:
  std::set<int> VerticesOf(const std::vector<int>& edge_ids) const {
    std::set<int> out;
    for (int e : edge_ids) {
      const auto& edge = edges_[static_cast<size_t>(e)];
      out.insert(edge.begin(), edge.end());
    }
    return out;
  }

  std::optional<int> DecomposeUncached(const std::vector<int>& edge_ids,
                                       const std::set<int>& connector) {
    std::set<int> comp_vertices = VerticesOf(edge_ids);
    std::vector<int> candidates;
    for (int e = 0; e < static_cast<int>(edges_.size()); ++e) {
      const auto& edge = edges_[static_cast<size_t>(e)];
      bool touches = false;
      for (int v : edge) {
        if (comp_vertices.count(v) > 0 || connector.count(v) > 0) {
          touches = true;
          break;
        }
      }
      if (touches) candidates.push_back(e);
    }

    std::vector<int> chosen;
    return TrySeparators(edge_ids, connector, comp_vertices, candidates, 0,
                         chosen);
  }

  std::optional<int> TrySeparators(const std::vector<int>& edge_ids,
                                   const std::set<int>& connector,
                                   const std::set<int>& comp_vertices,
                                   const std::vector<int>& candidates,
                                   size_t start, std::vector<int>& chosen) {
    if (budget_ != nullptr && !budget_->Charge()) return std::nullopt;
    if (!chosen.empty()) {
      std::optional<int> nodes =
          CheckSeparator(edge_ids, connector, comp_vertices, chosen);
      if (nodes.has_value()) return nodes;
    }
    if (chosen.size() == static_cast<size_t>(k_)) return std::nullopt;
    for (size_t i = start; i < candidates.size(); ++i) {
      chosen.push_back(candidates[i]);
      std::optional<int> nodes = TrySeparators(
          edge_ids, connector, comp_vertices, candidates, i + 1, chosen);
      chosen.pop_back();
      if (nodes.has_value()) return nodes;
    }
    return std::nullopt;
  }

  std::optional<int> CheckSeparator(const std::vector<int>& edge_ids,
                                    const std::set<int>& connector,
                                    const std::set<int>& comp_vertices,
                                    const std::vector<int>& separator) {
    if (budget_ != nullptr && !budget_->Charge()) return std::nullopt;
    std::set<int> bag;
    for (int e : separator) {
      const auto& edge = edges_[static_cast<size_t>(e)];
      bag.insert(edge.begin(), edge.end());
    }
    for (int v : connector) {
      if (bag.count(v) == 0) return std::nullopt;
    }
    bool covers_new = false;
    for (int v : comp_vertices) {
      if (connector.count(v) == 0 && bag.count(v) > 0) {
        covers_new = true;
        break;
      }
    }
    if (!covers_new) return std::nullopt;
    std::set<int> remaining;
    for (int v : comp_vertices) {
      if (bag.count(v) == 0) remaining.insert(v);
    }
    int total_nodes = 1;
    std::set<int> assigned;
    for (int seed : remaining) {
      if (assigned.count(seed) > 0) continue;
      std::set<int> comp{seed};
      std::vector<int> frontier{seed};
      std::set<int> comp_edges;
      while (!frontier.empty()) {
        int v = frontier.back();
        frontier.pop_back();
        for (int e : edge_ids) {
          const auto& edge = edges_[static_cast<size_t>(e)];
          if (edge.count(v) == 0) continue;
          comp_edges.insert(e);
          for (int w : edge) {
            if (bag.count(w) > 0 || comp.count(w) > 0) continue;
            comp.insert(w);
            frontier.push_back(w);
          }
        }
      }
      assigned.insert(comp.begin(), comp.end());
      std::set<int> sub_connector;
      for (int e : comp_edges) {
        const auto& edge = edges_[static_cast<size_t>(e)];
        for (int w : edge) {
          if (bag.count(w) > 0) sub_connector.insert(w);
        }
      }
      std::vector<int> sub_edges(comp_edges.begin(), comp_edges.end());
      std::optional<int> sub_nodes = Decompose(sub_edges, sub_connector);
      if (!sub_nodes.has_value()) return std::nullopt;
      total_nodes += *sub_nodes;
    }
    return total_nodes;
  }

  const std::vector<std::set<int>>& edges_;
  int k_;
  util::StepBudget* budget_;
  std::map<std::pair<std::vector<int>, std::set<int>>, std::optional<int>>
      memo_;
};

GhwResult GenericGhw(const Hypergraph& hg, int max_k,
                     util::StepBudget* budget) {
  GhwResult result;
  if (hg.IsAlphaAcyclic()) {
    result.width = 1;
    result.decomposition_nodes = hg.num_edges();
    return result;
  }
  std::vector<std::set<int>> edges(static_cast<size_t>(hg.num_edges()));
  for (int e = 0; e < hg.num_edges(); ++e) {
    auto span = hg.edge(e);
    edges[static_cast<size_t>(e)].insert(span.begin(), span.end());
  }
  std::vector<int> all_edges(static_cast<size_t>(hg.num_edges()));
  for (int e = 0; e < hg.num_edges(); ++e) {
    all_edges[static_cast<size_t>(e)] = e;
  }
  for (int k = 2; k <= max_k; ++k) {
    SetDetKDecomp solver(edges, k, budget);
    std::optional<int> nodes = solver.Decompose(all_edges, {});
    if (nodes.has_value()) {
      result.width = k;
      result.decomposition_nodes = *nodes;
      return result;
    }
    if (budget != nullptr && budget->exhausted()) break;
  }
  result.width = max_k + 1;
  result.exact = false;
  result.abandoned = budget != nullptr && budget->exhausted();
  return result;
}

}  // namespace

GhwResult GeneralizedHypertreeWidth(const Hypergraph& hg, GhwScratch& scratch,
                                    int max_k, util::StepBudget* budget) {
  GhwResult result;
  int m = hg.num_edges();
  if (m == 0) return result;
  if (hg.num_nodes() > 64 || m > 64) return GenericGhw(hg, max_k, budget);

  scratch.edge_masks.assign(static_cast<size_t>(m), 0);
  for (int e = 0; e < m; ++e) {
    for (int v : hg.edge(e)) {
      scratch.edge_masks[static_cast<size_t>(e)] |= 1ULL << v;
    }
  }

  scratch.gyo_masks = scratch.edge_masks;
  if (IsAlphaAcyclicBits(scratch.gyo_masks)) {
    result.width = 1;
    result.decomposition_nodes = m;
    return result;
  }

  uint64_t all_edges = m == 64 ? ~0ULL : ((1ULL << m) - 1);
  for (int k = 2; k <= max_k; ++k) {
    BitDetKDecomp solver(scratch.edge_masks, k, budget);
    std::optional<int> nodes = solver.Decompose(all_edges, 0);
    if (nodes.has_value()) {
      result.width = k;
      result.decomposition_nodes = *nodes;
      return result;
    }
    if (budget != nullptr && budget->exhausted()) break;
  }
  result.width = max_k + 1;
  result.exact = false;
  result.abandoned = budget != nullptr && budget->exhausted();
  return result;
}

GhwResult GeneralizedHypertreeWidth(const Hypergraph& hg, int max_k,
                                    util::StepBudget* budget) {
  GhwScratch scratch;
  return GeneralizedHypertreeWidth(hg, scratch, max_k, budget);
}

}  // namespace sparqlog::width
