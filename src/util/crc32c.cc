#include "util/crc32c.h"

#include <array>
#include <cstddef>

namespace sparqlog::util {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  // tab[k][b]: CRC of byte b followed by k zero bytes — the standard
  // slice-by-8 layout (tab[0] is the classic byte-at-a-time table).
  uint32_t tab[8][256];
};

constexpr Tables BuildTables() {
  Tables t{};
  for (uint32_t b = 0; b < 256; ++b) {
    uint32_t crc = b;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    t.tab[0][b] = crc;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = t.tab[k - 1][b];
      t.tab[k][b] = t.tab[0][crc & 0xFF] ^ (crc >> 8);
    }
  }
  return t;
}

constexpr Tables kTables = BuildTables();

inline uint32_t LoadLE32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, std::string_view data) {
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  crc = ~crc;
  while (n >= 8) {
    uint32_t lo = LoadLE32(p) ^ crc;
    uint32_t hi = LoadLE32(p + 4);
    crc = kTables.tab[7][lo & 0xFF] ^ kTables.tab[6][(lo >> 8) & 0xFF] ^
          kTables.tab[5][(lo >> 16) & 0xFF] ^ kTables.tab[4][lo >> 24] ^
          kTables.tab[3][hi & 0xFF] ^ kTables.tab[2][(hi >> 8) & 0xFF] ^
          kTables.tab[1][(hi >> 16) & 0xFF] ^ kTables.tab[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n--) {
    crc = kTables.tab[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace sparqlog::util
