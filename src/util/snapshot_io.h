#ifndef SPARQLOG_UTIL_SNAPSHOT_IO_H_
#define SPARQLOG_UTIL_SNAPSHOT_IO_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace sparqlog::util::snapshot {

/// Durable, checksummed snapshot files — the on-disk format behind the
/// run journal's checkpoints (pipeline/journal.h) and the future
/// out-of-core corpus store. Design goals, in order:
///
///   1. Never silently accept a damaged file. Every byte of a snapshot
///      is covered by a CRC32C (header checksum or a per-section
///      checksum over id+length+payload), so any single-byte flip,
///      truncation, torn write, or trailing garbage fails the load.
///   2. Power-loss-atomic publish: write-fsync-rename-fsync(dir), so a
///      crash at any instant leaves either the old file or the new one.
///   3. Two-generation retention behind a manifest, so a damaged newest
///      generation degrades to the previous one instead of losing the
///      run (the caller decides; see SnapshotStore).
///
/// File layout (all words little-endian u64):
///
///   header   magic | format_version | section_count | crc32c(first 24 bytes)
///   section  id | payload_size | crc32c(id words + payload) | payload bytes
///   ...      (section_count times; EOF must land exactly at the end)
///
/// Section ids are caller-defined; payloads are opaque byte strings
/// (the journal uses vbyte streams, util/vbyte.h).

inline constexpr uint64_t kSnapshotMagic = 0x31504E5351535130ULL;  // "0SQSNP1"
inline constexpr uint64_t kSnapshotVersion = 1;
inline constexpr uint64_t kManifestMagic = 0x31464E4D51535130ULL;  // "0SQMNF1"
inline constexpr uint64_t kManifestVersion = 1;

/// Test-only fault hooks for the durability fuzz harness
/// (testing/snapshot_faults.h). Production code never installs these;
/// all three are consulted by AtomicWriteFile when present.
struct IoFaultHooks {
  /// Return a byte count in [0, contents.size()) to simulate a torn
  /// publish of `path`: only that prefix reaches the final file, the
  /// rest of the tail reads back as zeros (unflushed blocks after a
  /// power cut). Return -1 for no fault.
  std::function<int64_t(const std::string& path, size_t size)> torn_write;
  /// Return true to fail the fsync of `path` (simulated EIO).
  std::function<bool(const std::string& path)> fail_fsync;
  /// Return true to fail the rename publishing `path`.
  std::function<bool(const std::string& path)> fail_rename;
};

/// Installs (or, with nullptr, clears) the process-wide fault hooks.
/// The pointer must outlive its installation. Not thread-safe against
/// concurrent AtomicWriteFile calls — tests arm it around single-
/// threaded save points.
void SetIoFaultHooksForTest(const IoFaultHooks* hooks);

/// Durable atomic publish: writes `contents` to `path + ".tmp"`, fsyncs
/// the file, renames it onto `path`, then fsyncs the parent directory
/// so the rename itself survives power loss. Any failing step surfaces
/// strerror(errno) in the status and leaves the previous `path` (if
/// any) untouched.
Status AtomicWriteFile(const std::string& path, std::string_view contents);

/// Accumulates sections and serializes the snapshot file image.
class SnapshotWriter {
 public:
  /// Ids must be unique per snapshot; sections load by id, so add order
  /// only affects file layout.
  void AddSection(uint64_t id, std::string payload);

  /// Renders header + sections with all checksums.
  std::string Finish() const;

  /// Sum of payload bytes added so far (bench bookkeeping).
  uint64_t payload_bytes() const { return payload_bytes_; }

 private:
  std::vector<std::pair<uint64_t, std::string>> sections_;
  uint64_t payload_bytes_ = 0;
};

enum class LoadMode {
  kStream,  ///< read the file into an owned buffer
  kMmap,    ///< map it read-only (falls back to stream off-POSIX)
};

/// A loaded, fully verified snapshot. Verification is eager: Load
/// checksums the header and every section before returning, so a
/// Snapshot in hand is internally consistent. Movable, not copyable
/// (may own an mmap region).
class Snapshot {
 public:
  static Result<Snapshot> Load(const std::string& path, LoadMode mode);

  Snapshot(Snapshot&& other) noexcept;
  Snapshot& operator=(Snapshot&& other) noexcept;
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;
  ~Snapshot();

  /// Payload view for `id`, or nullptr if the snapshot has no such
  /// section. Views point into the snapshot's buffer/mapping and die
  /// with it.
  const std::string_view* section(uint64_t id) const;

  size_t section_count() const { return sections_.size(); }
  /// (id, payload) pairs in file order — for tools that rewrite a
  /// snapshot preserving its layout (bench/snapshot_io.cc).
  const std::vector<std::pair<uint64_t, std::string_view>>& sections() const {
    return sections_;
  }
  uint64_t file_bytes() const { return size_; }
  bool mmap_backed() const { return mapped_; }

 private:
  Snapshot() = default;

  const char* data_ = nullptr;  // mapping or owned_.data()
  size_t size_ = 0;
  bool mapped_ = false;
  std::string owned_;
  std::vector<std::pair<uint64_t, std::string_view>> sections_;
};

/// Manifest contents: which generations exist. Generation numbers are
/// monotonically increasing and never reused; 0 means "none".
struct Generations {
  uint64_t current = 0;
  uint64_t previous = 0;
};

/// Two-generation snapshot store rooted at a manifest path. Layout:
///
///   <base>        manifest: magic | version | current | previous | crc
///   <base>.g<N>   snapshot file for generation N
///
/// Save writes the new generation file first, then atomically swings
/// the manifest, then prunes generations older than `previous` — so a
/// crash at any point leaves a manifest whose generations are intact.
/// The store performs only integrity-level checks; semantic validation
/// (fingerprints, digests) and the fall-back-to-previous decision
/// belong to the caller, which knows which failures are recoverable.
class SnapshotStore {
 public:
  explicit SnapshotStore(std::string base_path)
      : base_path_(std::move(base_path)) {}

  const std::string& manifest_path() const { return base_path_; }
  std::string GenerationPath(uint64_t gen) const;

  /// NotFound if no manifest exists (fresh store); InvalidArgument with
  /// a reason if one exists but is damaged or version-incompatible.
  Result<Generations> ReadManifest() const;

  Result<Snapshot> LoadGeneration(uint64_t gen, LoadMode mode) const;

  /// Publishes `writer` as the next generation and returns its number.
  /// On any error the previous manifest and its generations survive.
  Result<uint64_t> Save(const SnapshotWriter& writer);

  /// Removes the manifest and every retained generation (test setup).
  void Remove() const;

 private:
  std::string base_path_;
};

}  // namespace sparqlog::util::snapshot

#endif  // SPARQLOG_UTIL_SNAPSHOT_IO_H_
