#ifndef SPARQLOG_UTIL_TABLE_H_
#define SPARQLOG_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace sparqlog::util {

/// Fixed-width, right-padded text table used by every bench binary to
/// print paper-style tables.
///
/// Usage:
///   Table t({"Shape", "#Queries", "Relative %"});
///   t.AddRow({"chain", "15,561,944", "98.87%"});
///   t.Print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a data row; must have as many cells as the header.
  void AddRow(std::vector<std::string> row);

  /// Adds a horizontal separator line.
  void AddSeparator();

  /// Renders the table with column alignment and a header rule.
  void Print(std::ostream& os) const;

  /// Renders as comma-separated values (no alignment), for machine use.
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace sparqlog::util

#endif  // SPARQLOG_UTIL_TABLE_H_
