#include "util/snapshot_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>

#include "util/crc32c.h"
#include "util/serde.h"

#if defined(__unix__) || defined(__APPLE__)
#define SPARQLOG_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SPARQLOG_HAVE_POSIX_IO 0
#endif

namespace sparqlog::util::snapshot {

namespace {

constexpr uint64_t kHeaderBytes = 32;        // magic, version, count, crc
constexpr uint64_t kSectionHeaderBytes = 24; // id, size, crc
constexpr uint64_t kManifestBytes = 40;      // magic, version, cur, prev, crc

const IoFaultHooks* g_hooks = nullptr;

std::string Errno(const char* op, const std::string& path) {
  return std::string(op) + " failed for '" + path + "': " +
         std::strerror(errno);
}

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

#if SPARQLOG_HAVE_POSIX_IO
bool WriteAllRetryEintr(int fd, const char* data, size_t size) {
  while (size > 0) {
    ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

Status FsyncPath(const std::string& path, int fd) {
  if (g_hooks && g_hooks->fail_fsync && g_hooks->fail_fsync(path)) {
    errno = EIO;
    return Status::Internal("injected fault: " + Errno("fsync", path));
  }
  if (::fsync(fd) != 0) return Status::Internal(Errno("fsync", path));
  return Status::OK();
}
#endif

}  // namespace

void SetIoFaultHooksForTest(const IoFaultHooks* hooks) { g_hooks = hooks; }

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";

  // A torn publish (power cut between write and fsync) manifests as the
  // final file carrying only a prefix of the payload, with the
  // unflushed tail reading back as zeros. The hook reproduces that end
  // state deterministically for the durability harness.
  int64_t tear = -1;
  if (g_hooks && g_hooks->torn_write) {
    tear = g_hooks->torn_write(path, contents.size());
  }

#if SPARQLOG_HAVE_POSIX_IO
  int fd = -1;
  for (;;) {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0 || errno != EINTR) break;
  }
  if (fd < 0) return Status::Internal(Errno("open", tmp));

  bool wrote;
  if (tear >= 0 && static_cast<uint64_t>(tear) < contents.size()) {
    std::string torn(contents.substr(0, static_cast<size_t>(tear)));
    torn.resize(contents.size(), '\0');
    wrote = WriteAllRetryEintr(fd, torn.data(), torn.size());
  } else {
    wrote = WriteAllRetryEintr(fd, contents.data(), contents.size());
  }
  if (!wrote) {
    Status st = Status::Internal(Errno("write", tmp));
    ::close(fd);
    std::remove(tmp.c_str());
    return st;
  }

  if (tear < 0) {  // a torn publish is precisely a publish without the fsync
    Status st = FsyncPath(tmp, fd);
    if (!st.ok()) {
      ::close(fd);
      std::remove(tmp.c_str());
      return st;
    }
  }
  if (::close(fd) != 0) {
    Status st = Status::Internal(Errno("close", tmp));
    std::remove(tmp.c_str());
    return st;
  }

  if (g_hooks && g_hooks->fail_rename && g_hooks->fail_rename(path)) {
    errno = EIO;
    Status st = Status::Internal("injected fault: " + Errno("rename", path));
    std::remove(tmp.c_str());
    return st;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    Status st = Status::Internal(Errno("rename", tmp));
    std::remove(tmp.c_str());
    return st;
  }

  // fsync the parent directory so the rename itself is durable; without
  // this the new name can vanish on power loss even though the data
  // blocks were synced.
  if (tear < 0) {
    const std::string dir = ParentDir(path);
    int dfd = -1;
    for (;;) {
      dfd = ::open(dir.c_str(), O_RDONLY);
      if (dfd >= 0 || errno != EINTR) break;
    }
    if (dfd < 0) return Status::Internal(Errno("open directory", dir));
    Status st = FsyncPath(dir, dfd);
    ::close(dfd);
    if (!st.ok()) return st;
  }
  return Status::OK();
#else
  // No POSIX fd API: best-effort stream write + rename. The durability
  // guarantee degrades to the filesystem's, but the format-level
  // corruption detection is unaffected.
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (tear >= 0 && static_cast<uint64_t>(tear) < contents.size()) {
      std::string torn(contents.substr(0, static_cast<size_t>(tear)));
      torn.resize(contents.size(), '\0');
      out.write(torn.data(), static_cast<std::streamsize>(torn.size()));
    } else {
      out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    }
    if (!out) {
      std::remove(tmp.c_str());
      return Status::Internal("write failed for '" + tmp + "'");
    }
  }
  if (g_hooks && g_hooks->fail_rename && g_hooks->fail_rename(path)) {
    std::remove(tmp.c_str());
    return Status::Internal("injected fault: rename failed for '" + path +
                            "': I/O error");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    Status st = Status::Internal(Errno("rename", tmp));
    std::remove(tmp.c_str());
    return st;
  }
  return Status::OK();
#endif
}

void SnapshotWriter::AddSection(uint64_t id, std::string payload) {
  payload_bytes_ += payload.size();
  sections_.emplace_back(id, std::move(payload));
}

std::string SnapshotWriter::Finish() const {
  std::string out;
  uint64_t total = kHeaderBytes;
  for (const auto& [id, payload] : sections_) {
    total += kSectionHeaderBytes + payload.size();
  }
  out.reserve(static_cast<size_t>(total));

  serde::PutU64(out, kSnapshotMagic);
  serde::PutU64(out, kSnapshotVersion);
  serde::PutU64(out, sections_.size());
  serde::PutU64(out, Crc32c(std::string_view(out.data(), 24)));

  for (const auto& [id, payload] : sections_) {
    std::string head;
    serde::PutU64(head, id);
    serde::PutU64(head, payload.size());
    uint32_t crc = Crc32cExtend(Crc32c(head), payload);
    out += head;
    serde::PutU64(out, crc);
    out += payload;
  }
  return out;
}

Snapshot::Snapshot(Snapshot&& other) noexcept { *this = std::move(other); }

Snapshot& Snapshot::operator=(Snapshot&& other) noexcept {
  if (this == &other) return *this;
#if SPARQLOG_HAVE_POSIX_IO
  if (mapped_ && data_ != nullptr) ::munmap(const_cast<char*>(data_), size_);
#endif
  data_ = other.data_;
  size_ = other.size_;
  mapped_ = other.mapped_;
  sections_ = std::move(other.sections_);
  if (mapped_) {
    owned_.clear();
  } else {
    // Moving the owning string may relocate its bytes (SSO), so convert
    // the section views to offsets across the move and re-base them.
    std::vector<size_t> offsets;
    offsets.reserve(sections_.size());
    for (const auto& [id, view] : sections_) {
      offsets.push_back(static_cast<size_t>(view.data() - other.owned_.data()));
    }
    owned_ = std::move(other.owned_);
    data_ = owned_.data();
    for (size_t i = 0; i < sections_.size(); ++i) {
      sections_[i].second =
          std::string_view(owned_.data() + offsets[i], sections_[i].second.size());
    }
  }
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  other.sections_.clear();
  return *this;
}

Snapshot::~Snapshot() {
#if SPARQLOG_HAVE_POSIX_IO
  if (mapped_ && data_ != nullptr) ::munmap(const_cast<char*>(data_), size_);
#endif
}

const std::string_view* Snapshot::section(uint64_t id) const {
  for (const auto& [sid, view] : sections_) {
    if (sid == id) return &view;
  }
  return nullptr;
}

Result<Snapshot> Snapshot::Load(const std::string& path, LoadMode mode) {
  Snapshot snap;

#if SPARQLOG_HAVE_POSIX_IO
  if (mode == LoadMode::kMmap) {
    int fd = -1;
    for (;;) {
      fd = ::open(path.c_str(), O_RDONLY);
      if (fd >= 0 || errno != EINTR) break;
    }
    if (fd < 0) return Status::NotFound(Errno("open", path));
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      Status s = Status::Internal(Errno("fstat", path));
      ::close(fd);
      return s;
    }
    size_t size = static_cast<size_t>(st.st_size);
    if (size < kHeaderBytes) {
      ::close(fd);
      return Status::InvalidArgument("snapshot '" + path +
                                     "': truncated header (" +
                                     std::to_string(size) + " bytes)");
    }
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED) {
      return Status::Internal(Errno("mmap", path));
    }
    snap.data_ = static_cast<const char*>(map);
    snap.size_ = size;
    snap.mapped_ = true;
  }
#endif

  if (!snap.mapped_) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound("cannot open snapshot '" + path + "'");
    std::string buffer((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
    if (in.bad()) return Status::Internal("read failed for '" + path + "'");
    snap.owned_ = std::move(buffer);
    snap.data_ = snap.owned_.data();
    snap.size_ = snap.owned_.size();
  }

  // --- eager verification: any damage fails here, never later ---
  std::string_view file(snap.data_, snap.size_);
  auto corrupt = [&path](std::string why) {
    return Status::InvalidArgument("snapshot '" + path + "': " +
                                   std::move(why));
  };

  if (file.size() < kHeaderBytes) {
    return corrupt("truncated header (" + std::to_string(file.size()) +
                   " bytes)");
  }
  std::string_view cursor = file;
  uint64_t magic, version, section_count, header_crc;
  serde::GetU64(cursor, magic);
  serde::GetU64(cursor, version);
  serde::GetU64(cursor, section_count);
  serde::GetU64(cursor, header_crc);
  if (magic != kSnapshotMagic) return corrupt("bad magic");
  if (version != kSnapshotVersion) {
    return corrupt("unsupported format version " + std::to_string(version) +
                   " (have " + std::to_string(kSnapshotVersion) + ")");
  }
  if (header_crc != Crc32c(file.substr(0, 24))) {
    return corrupt("header checksum mismatch");
  }
  if (section_count > file.size() / kSectionHeaderBytes) {
    return corrupt("section count " + std::to_string(section_count) +
                   " exceeds file size");
  }

  snap.sections_.reserve(static_cast<size_t>(section_count));
  size_t offset = kHeaderBytes;
  for (uint64_t i = 0; i < section_count; ++i) {
    if (file.size() - offset < kSectionHeaderBytes) {
      return corrupt("truncated section header at offset " +
                     std::to_string(offset));
    }
    std::string_view head = file.substr(offset, 16);  // id + size words
    std::string_view rest = head;
    uint64_t id, payload_size;
    serde::GetU64(rest, id);
    serde::GetU64(rest, payload_size);
    std::string_view crc_word = file.substr(offset + 16, 8);
    uint64_t stored_crc;
    serde::GetU64(crc_word, stored_crc);
    offset += kSectionHeaderBytes;
    if (payload_size > file.size() - offset) {
      return corrupt("section " + std::to_string(id) +
                     " length overruns file (offset " +
                     std::to_string(offset) + ")");
    }
    std::string_view payload =
        file.substr(offset, static_cast<size_t>(payload_size));
    if (stored_crc != Crc32cExtend(Crc32c(head), payload)) {
      return corrupt("section " + std::to_string(id) +
                     " checksum mismatch at offset " + std::to_string(offset));
    }
    if (snap.section(id) != nullptr) {
      return corrupt("duplicate section id " + std::to_string(id));
    }
    snap.sections_.emplace_back(id, payload);
    offset += static_cast<size_t>(payload_size);
  }
  if (offset != file.size()) {
    return corrupt(std::to_string(file.size() - offset) +
                   " trailing bytes after last section");
  }
  return snap;
}

std::string SnapshotStore::GenerationPath(uint64_t gen) const {
  return base_path_ + ".g" + std::to_string(gen);
}

Result<Generations> SnapshotStore::ReadManifest() const {
  std::ifstream in(base_path_, std::ios::binary);
  if (!in) return Status::NotFound("no manifest at '" + base_path_ + "'");
  std::string buffer((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  auto corrupt = [this](std::string why) {
    return Status::InvalidArgument("snapshot manifest '" + base_path_ +
                                   "': " + std::move(why));
  };
  if (buffer.size() != kManifestBytes) {
    return corrupt("wrong size " + std::to_string(buffer.size()) +
                   " (want " + std::to_string(kManifestBytes) + ")");
  }
  std::string_view cursor(buffer);
  uint64_t magic, version, crc;
  Generations gens;
  serde::GetU64(cursor, magic);
  serde::GetU64(cursor, version);
  serde::GetU64(cursor, gens.current);
  serde::GetU64(cursor, gens.previous);
  serde::GetU64(cursor, crc);
  if (magic != kManifestMagic) return corrupt("bad magic");
  if (version != kManifestVersion) {
    return corrupt("unsupported manifest version " + std::to_string(version));
  }
  if (crc != Crc32c(std::string_view(buffer.data(), 32))) {
    return corrupt("checksum mismatch");
  }
  if (gens.current == 0 || (gens.previous != 0 && gens.previous >= gens.current)) {
    return corrupt("implausible generations " + std::to_string(gens.current) +
                   "/" + std::to_string(gens.previous));
  }
  return gens;
}

Result<Snapshot> SnapshotStore::LoadGeneration(uint64_t gen,
                                               LoadMode mode) const {
  return Snapshot::Load(GenerationPath(gen), mode);
}

Result<uint64_t> SnapshotStore::Save(const SnapshotWriter& writer) {
  Generations gens;
  auto manifest = ReadManifest();
  if (manifest.ok()) {
    gens = manifest.value();
  } else if (manifest.status().code() != StatusCode::kNotFound) {
    // A damaged manifest is not silently overwritten: the caller must
    // decide (hard error, or Remove() and start over).
    return manifest.status();
  }

  uint64_t gen = gens.current + 1;
  Status st = AtomicWriteFile(GenerationPath(gen), writer.Finish());
  if (!st.ok()) {
    return Status::Internal("saving snapshot generation " +
                            std::to_string(gen) + ": " + st.message());
  }

  std::string manifest_bytes;
  serde::PutU64(manifest_bytes, kManifestMagic);
  serde::PutU64(manifest_bytes, kManifestVersion);
  serde::PutU64(manifest_bytes, gen);
  serde::PutU64(manifest_bytes, gens.current);
  serde::PutU64(manifest_bytes,
                Crc32c(std::string_view(manifest_bytes.data(), 32)));
  st = AtomicWriteFile(base_path_, manifest_bytes);
  if (!st.ok()) {
    // The new generation file exists but no manifest references it; the
    // old manifest (if any) is still in place and fully consistent.
    std::remove(GenerationPath(gen).c_str());
    return Status::Internal("publishing snapshot manifest: " + st.message());
  }

  // Retention: the manifest now references {gen, gens.current}; any
  // generation at or before the old `previous` is garbage. Best-effort.
  if (gens.previous != 0) std::remove(GenerationPath(gens.previous).c_str());
  return gen;
}

void SnapshotStore::Remove() const {
  auto manifest = ReadManifest();
  if (manifest.ok()) {
    if (manifest.value().current != 0) {
      std::remove(GenerationPath(manifest.value().current).c_str());
      // A half-published next generation may exist if a save died
      // between the generation write and the manifest swing.
      std::remove(GenerationPath(manifest.value().current + 1).c_str());
    }
    if (manifest.value().previous != 0) {
      std::remove(GenerationPath(manifest.value().previous).c_str());
    }
  }
  std::remove((base_path_ + ".tmp").c_str());
  std::remove(base_path_.c_str());
}

}  // namespace sparqlog::util::snapshot
