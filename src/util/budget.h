#ifndef SPARQLOG_UTIL_BUDGET_H_
#define SPARQLOG_UTIL_BUDGET_H_

#include <cstdint>

namespace sparqlog::util {

/// Cooperative step-count budget for the exponential analysis kernels
/// (det-k-decomp, treewidth elimination search, girth BFS, blocked
/// Myers). A budget counts abstract work units, not wall-clock time, so
/// the abandon/complete decision for a given input is bit-reproducible
/// across machines, thread counts, and runs — the property the
/// StatisticsDigest equivalence checks rely on.
///
/// A default-constructed budget (or one built with limit 0) is
/// unlimited: Charge() always succeeds and exhausted() stays false.
/// Kernels take a `StepBudget*` defaulted to nullptr so existing
/// callers keep their exact behaviour.
class StepBudget {
 public:
  StepBudget() = default;
  explicit StepBudget(uint64_t limit) : remaining_(limit), limited_(limit > 0) {}

  /// Deducts `steps` units. Returns false — permanently — once the
  /// budget is exhausted; callers should unwind and report abandonment.
  bool Charge(uint64_t steps = 1) {
    if (!limited_) return true;
    if (exhausted_ || steps > remaining_) {
      exhausted_ = true;
      remaining_ = 0;
      return false;
    }
    remaining_ -= steps;
    return true;
  }

  bool exhausted() const { return exhausted_; }
  bool limited() const { return limited_; }
  uint64_t remaining() const { return remaining_; }

 private:
  uint64_t remaining_ = 0;
  bool limited_ = false;
  bool exhausted_ = false;
};

}  // namespace sparqlog::util

#endif  // SPARQLOG_UTIL_BUDGET_H_
