#include "util/levenshtein.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace sparqlog::util {

size_t Levenshtein(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);
  // b is the shorter string; keep one row of the DP matrix.
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      size_t next = std::min({row[j] + 1, row[j - 1] + 1, diag + cost});
      diag = row[j];
      row[j] = next;
    }
  }
  return row[b.size()];
}

size_t BoundedLevenshtein(std::string_view a, std::string_view b,
                          size_t max_dist) {
  if (a.size() < b.size()) std::swap(a, b);
  size_t n = a.size(), m = b.size();
  if (n - m > max_dist) return max_dist + 1;
  if (max_dist == 0) return a == b ? 0 : 1;

  const size_t kInf = max_dist + 1;
  // Band of width 2*max_dist+1 around the diagonal.
  std::vector<size_t> row(m + 1, kInf), next(m + 1, kInf);
  size_t lo0 = 0, hi0 = std::min(m, max_dist);
  for (size_t j = lo0; j <= hi0; ++j) row[j] = j;

  for (size_t i = 1; i <= n; ++i) {
    size_t lo = (i > max_dist) ? i - max_dist : 0;
    size_t hi = std::min(m, i + max_dist);
    if (lo > hi) return kInf;
    std::fill(next.begin() + static_cast<long>(lo),
              next.begin() + static_cast<long>(hi) + 1, kInf);
    // The cell just left of the band belongs to a previous row's band;
    // it must read as "infinite" for this row.
    if (lo >= 1) next[lo - 1] = kInf;
    size_t best = kInf;
    for (size_t j = lo; j <= hi; ++j) {
      size_t v = kInf;
      if (j == 0) {
        v = i;
      } else {
        size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
        size_t diag = row[j - 1];
        v = std::min(v, diag == kInf ? kInf : diag + cost);
        if (row[j] != kInf) v = std::min(v, row[j] + 1);
        if (next[j - 1] != kInf) v = std::min(v, next[j - 1] + 1);
      }
      if (v > kInf) v = kInf;
      next[j] = v;
      best = std::min(best, v);
    }
    if (best > max_dist) return kInf;
    std::swap(row, next);
  }
  return std::min(row[m], kInf);
}

bool SimilarByLevenshtein(std::string_view a, std::string_view b,
                          double threshold) {
  size_t longer = std::max(a.size(), b.size());
  if (longer == 0) return true;
  size_t budget = static_cast<size_t>(std::floor(threshold * longer));
  return BoundedLevenshtein(a, b, budget) <= budget;
}

}  // namespace sparqlog::util
