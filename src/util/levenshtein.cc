#include "util/levenshtein.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

namespace sparqlog::util {

namespace {

constexpr uint64_t kTopBit = 1ULL << 63;

/// One column of the single-word Myers recurrence (Hyyro's formulation).
/// `peq` is the pattern bitmask of the current text byte, `last` the bit
/// of the pattern's final row. Returns the score delta (-1, 0, +1).
inline int MyersStep(uint64_t peq, uint64_t last, uint64_t& vp,
                     uint64_t& vn) {
  uint64_t xv = peq | vn;
  uint64_t xh = (((peq & vp) + vp) ^ vp) | peq;
  uint64_t ph = vn | ~(xh | vp);
  uint64_t mh = vp & xh;
  int delta = 0;
  if (ph & last) delta = 1;
  if (mh & last) delta = -1;
  ph = (ph << 1) | 1;
  vn = ph & xv;
  vp = (mh << 1) | ~(xv | ph);
  return delta;
}

/// Single-word Myers: pattern `p` (|p| <= 64) against text `t`. When
/// `max_dist` < SIZE_MAX, applies the lower-bound cutoff: the final
/// score is at least score - (columns remaining), so once that exceeds
/// the budget the distance cannot come back under it.
size_t MyersSingleWord(std::string_view p, std::string_view t,
                       size_t max_dist, StepBudget* budget = nullptr) {
  uint64_t peq[256] = {0};
  for (size_t i = 0; i < p.size(); ++i) {
    peq[static_cast<unsigned char>(p[i])] |= 1ULL << i;
  }
  uint64_t vp = ~0ULL, vn = 0;
  uint64_t last = 1ULL << (p.size() - 1);
  size_t score = p.size();
  for (size_t j = 0; j < t.size(); ++j) {
    if (budget != nullptr && !budget->Charge()) return max_dist + 1;
    score = static_cast<size_t>(
        static_cast<long long>(score) +
        MyersStep(peq[static_cast<unsigned char>(t[j])], last, vp, vn));
    size_t remaining = t.size() - j - 1;
    if (score > max_dist && score - std::min(score, remaining) > max_dist) {
      return max_dist + 1;
    }
  }
  return score;
}

/// One column step of one 64-row block. `hin` in {-1, 0, +1} is the
/// horizontal delta entering the block from below; returns the delta
/// leaving its top row.
inline int MyersBlockStep(uint64_t peq, uint64_t& vp, uint64_t& vn,
                          int hin) {
  uint64_t xv = peq | vn;
  uint64_t eq = hin < 0 ? peq | 1 : peq;
  uint64_t xh = (((eq & vp) + vp) ^ vp) | eq;
  uint64_t ph = vn | ~(xh | vp);
  uint64_t mh = vp & xh;
  int hout = 0;
  if (ph & kTopBit) hout = 1;
  if (mh & kTopBit) hout = -1;
  ph <<= 1;
  mh <<= 1;
  if (hin > 0) ph |= 1;
  if (hin < 0) mh |= 1;
  vn = ph & xv;
  vp = mh | ~(xv | ph);
  return hout;
}

/// Block-based Myers for patterns longer than 64 bytes. Exact distance
/// with the same lower-bound cutoff as the single-word version.
size_t MyersBlocked(std::string_view p, std::string_view t, size_t max_dist,
                    LevenshteinScratch& scratch,
                    StepBudget* budget = nullptr) {
  const size_t blocks = (p.size() + 63) / 64;
  scratch.peq.assign(blocks * 256, 0);
  for (size_t i = 0; i < p.size(); ++i) {
    scratch.peq[static_cast<unsigned char>(p[i]) * blocks + i / 64] |=
        1ULL << (i % 64);
  }
  scratch.vp.assign(blocks, ~0ULL);
  scratch.vn.assign(blocks, 0);
  uint64_t last = 1ULL << ((p.size() - 1) % 64);
  size_t score = p.size();
  for (size_t j = 0; j < t.size(); ++j) {
    if (budget != nullptr && !budget->Charge(blocks)) return max_dist + 1;
    const uint64_t* peq =
        scratch.peq.data() + static_cast<unsigned char>(t[j]) * blocks;
    int carry = 1;  // row 0 of the imaginary boundary grows by one per column
    for (size_t b = 0; b + 1 < blocks; ++b) {
      carry = MyersBlockStep(peq[b], scratch.vp[b], scratch.vn[b], carry);
    }
    // The final block carries the score bit on the pattern's last row.
    {
      size_t b = blocks - 1;
      uint64_t xv = peq[b] | scratch.vn[b];
      uint64_t eq = carry < 0 ? peq[b] | 1 : peq[b];
      uint64_t xh =
          (((eq & scratch.vp[b]) + scratch.vp[b]) ^ scratch.vp[b]) | eq;
      uint64_t ph = scratch.vn[b] | ~(xh | scratch.vp[b]);
      uint64_t mh = scratch.vp[b] & xh;
      if (ph & last) ++score;
      if (mh & last) --score;
      ph <<= 1;
      mh <<= 1;
      if (carry > 0) ph |= 1;
      if (carry < 0) mh |= 1;
      scratch.vn[b] = ph & xv;
      scratch.vp[b] = mh | ~(xv | ph);
    }
    size_t remaining = t.size() - j - 1;
    if (score > max_dist && score - std::min(score, remaining) > max_dist) {
      return max_dist + 1;
    }
  }
  return score;
}

size_t MyersDispatch(std::string_view a, std::string_view b, size_t max_dist,
                     LevenshteinScratch& scratch,
                     StepBudget* budget = nullptr) {
  if (a.size() < b.size()) std::swap(a, b);
  // b is the (possibly empty) pattern; a is the text.
  if (a.size() - b.size() > max_dist) return max_dist + 1;
  if (b.empty()) return a.size();
  size_t d = b.size() <= 64 ? MyersSingleWord(b, a, max_dist, budget)
                            : MyersBlocked(b, a, max_dist, scratch, budget);
  return d <= max_dist ? d : max_dist + 1;
}

}  // namespace

size_t Levenshtein(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);
  // b is the shorter string; keep one row of the DP matrix.
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      size_t next = std::min({row[j] + 1, row[j - 1] + 1, diag + cost});
      diag = row[j];
      row[j] = next;
    }
  }
  return row[b.size()];
}

size_t MyersLevenshtein(std::string_view a, std::string_view b,
                        LevenshteinScratch& scratch) {
  constexpr size_t kUnbounded = static_cast<size_t>(-2);
  return MyersDispatch(a, b, kUnbounded, scratch);
}

size_t MyersLevenshtein(std::string_view a, std::string_view b) {
  LevenshteinScratch scratch;
  return MyersLevenshtein(a, b, scratch);
}

size_t BoundedLevenshtein(std::string_view a, std::string_view b,
                          size_t max_dist, LevenshteinScratch& scratch) {
  if (a.size() < b.size()) std::swap(a, b);
  size_t n = a.size(), m = b.size();
  if (n - m > max_dist) return max_dist + 1;
  if (max_dist == 0) return a == b ? 0 : 1;

  const size_t kInf = max_dist + 1;
  // Band of width 2*max_dist+1 around the diagonal.
  std::vector<size_t>& row = scratch.row;
  std::vector<size_t>& next = scratch.next;
  row.assign(m + 1, kInf);
  next.assign(m + 1, kInf);
  size_t lo0 = 0, hi0 = std::min(m, max_dist);
  for (size_t j = lo0; j <= hi0; ++j) row[j] = j;

  for (size_t i = 1; i <= n; ++i) {
    size_t lo = (i > max_dist) ? i - max_dist : 0;
    size_t hi = std::min(m, i + max_dist);
    if (lo > hi) return kInf;
    std::fill(next.begin() + static_cast<long>(lo),
              next.begin() + static_cast<long>(hi) + 1, kInf);
    // The cell just left of the band belongs to a previous row's band;
    // it must read as "infinite" for this row.
    if (lo >= 1) next[lo - 1] = kInf;
    size_t best = kInf;
    for (size_t j = lo; j <= hi; ++j) {
      size_t v = kInf;
      if (j == 0) {
        v = i;
      } else {
        size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
        size_t diag = row[j - 1];
        v = std::min(v, diag == kInf ? kInf : diag + cost);
        if (row[j] != kInf) v = std::min(v, row[j] + 1);
        if (next[j - 1] != kInf) v = std::min(v, next[j - 1] + 1);
      }
      if (v > kInf) v = kInf;
      next[j] = v;
      best = std::min(best, v);
    }
    if (best > max_dist) return kInf;
    std::swap(row, next);
  }
  return std::min(row[m], kInf);
}

size_t BoundedLevenshtein(std::string_view a, std::string_view b,
                          size_t max_dist) {
  thread_local LevenshteinScratch scratch;
  return BoundedLevenshtein(a, b, max_dist, scratch);
}

size_t MyersBoundedLevenshtein(std::string_view a, std::string_view b,
                               size_t max_dist,
                               LevenshteinScratch& scratch) {
  return MyersDispatch(a, b, max_dist, scratch);
}

size_t MyersBoundedLevenshtein(std::string_view a, std::string_view b,
                               size_t max_dist, LevenshteinScratch& scratch,
                               StepBudget* budget) {
  return MyersDispatch(a, b, max_dist, scratch, budget);
}

bool SimilarByLevenshtein(std::string_view a, std::string_view b,
                          double threshold, LevenshteinScratch& scratch) {
  size_t longer = std::max(a.size(), b.size());
  if (longer == 0) return true;
  size_t budget = static_cast<size_t>(std::floor(threshold * longer));
  return MyersBoundedLevenshtein(a, b, budget, scratch) <= budget;
}

bool SimilarByLevenshtein(std::string_view a, std::string_view b,
                          double threshold) {
  thread_local LevenshteinScratch scratch;
  return SimilarByLevenshtein(a, b, threshold, scratch);
}

}  // namespace sparqlog::util
