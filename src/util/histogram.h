#ifndef SPARQLOG_UTIL_HISTOGRAM_H_
#define SPARQLOG_UTIL_HISTOGRAM_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace sparqlog::util {

/// Integer histogram with a fixed number of direct buckets and an
/// overflow bucket, matching the paper's "0, 1, ..., 10, 11+" plots.
class BucketHistogram {
 public:
  /// Buckets 0..max_direct map one-to-one; larger values land in the
  /// overflow bucket.
  explicit BucketHistogram(int max_direct)
      : counts_(static_cast<size_t>(max_direct) + 2, 0),
        max_direct_(max_direct) {}

  void Add(int64_t value, uint64_t weight = 1) {
    if (value < 0) value = 0;
    size_t idx = value > max_direct_ ? counts_.size() - 1
                                     : static_cast<size_t>(value);
    counts_[idx] += weight;
  }

  /// Adds all of `other`'s buckets into this histogram. Both histograms
  /// must use the same bucket layout (equal max_direct); a mismatch is
  /// rejected (no-op) rather than cross-contaminating buckets when the
  /// assert is compiled out.
  void Merge(const BucketHistogram& other) {
    assert(max_direct_ == other.max_direct_ &&
           "cannot merge histograms with different bucket layouts");
    if (max_direct_ != other.max_direct_) return;
    for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  }

  /// Count of the direct bucket `v` (0 <= v <= max_direct).
  uint64_t Count(int v) const { return counts_[static_cast<size_t>(v)]; }

  /// Count of the overflow ("11+") bucket.
  uint64_t Overflow() const { return counts_.back(); }

  uint64_t Total() const {
    uint64_t t = 0;
    for (uint64_t c : counts_) t += c;
    return t;
  }

  int max_direct() const { return max_direct_; }

 private:
  std::vector<uint64_t> counts_;
  int max_direct_;
};

}  // namespace sparqlog::util

#endif  // SPARQLOG_UTIL_HISTOGRAM_H_
