#ifndef SPARQLOG_UTIL_STATUS_H_
#define SPARQLOG_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace sparqlog::util {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (e.g. a SPARQL syntax error).
  kNotFound,          ///< A referenced entity does not exist.
  kOutOfRange,        ///< A numeric argument is outside its domain.
  kUnsupported,       ///< The input is recognized but not handled.
  kTimeout,           ///< An operation exceeded its deadline.
  kInternal,          ///< An invariant was violated (library bug).
};

/// Outcome of a fallible operation, in the Arrow/RocksDB idiom:
/// no exceptions cross public API boundaries.
///
/// Cheap to copy on the OK path (empty message); carries a code and a
/// human-readable message on failure.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>" for logs and test output.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kUnsupported: return "Unsupported";
      case StatusCode::kTimeout: return "Timeout";
      case StatusCode::kInternal: return "Internal";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

}  // namespace sparqlog::util

#endif  // SPARQLOG_UTIL_STATUS_H_
