#ifndef SPARQLOG_UTIL_RNG_H_
#define SPARQLOG_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sparqlog::util {

/// Deterministic, seedable PRNG (xoshiro256**).
///
/// All generators and experiments in this library are seeded explicitly so
/// that every table and figure is exactly reproducible from the command
/// line. Not cryptographically secure.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability `p`.
  bool Chance(double p);

  /// Samples an index according to `weights` (need not be normalized).
  /// Returns 0 if all weights are <= 0.
  size_t Weighted(const std::vector<double>& weights);

  /// Zipf-distributed value in [1, n] with exponent `s`.
  uint64_t Zipf(uint64_t n, double s);

 private:
  uint64_t s_[4];
};

}  // namespace sparqlog::util

#endif  // SPARQLOG_UTIL_RNG_H_
