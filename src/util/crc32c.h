#ifndef SPARQLOG_UTIL_CRC32C_H_
#define SPARQLOG_UTIL_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace sparqlog::util {

/// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum guarding every snapshot section (util/snapshot_io.h).
/// Chosen over plain CRC32 for its better Hamming distance at the
/// section sizes we write, and because it is the checksum used by the
/// storage systems this format borrows from (leveldb tables, ext4
/// metadata), so known-answer vectors are easy to cross-check:
/// Crc32c("123456789") == 0xE3069283.
///
/// Portable slice-by-8 table implementation; single-byte detection is
/// the contract the corruption-matrix tests pin, not throughput.

/// Extends a running CRC with `data`. Start from 0 for a fresh stream;
/// Crc32cExtend(Crc32cExtend(0, a), b) == Crc32c(a + b).
uint32_t Crc32cExtend(uint32_t crc, std::string_view data);

inline uint32_t Crc32c(std::string_view data) { return Crc32cExtend(0, data); }

}  // namespace sparqlog::util

#endif  // SPARQLOG_UTIL_CRC32C_H_
