#ifndef SPARQLOG_UTIL_VBYTE_H_
#define SPARQLOG_UTIL_VBYTE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sparqlog::util::vbyte {

/// Variable-byte (LEB128) integer streams for snapshot section payloads
/// (util/snapshot_io.h). Unlike util/serde.h — fixed-width words over
/// iostreams for the few, small journal framing fields — these encode
/// into an in-memory buffer that is checksummed and published as one
/// section, and they compress: counter-dominated shard state is mostly
/// small integers, and sorted 64-bit hash sets gap-encode well.
///
/// Decoders take the input as a std::string_view& and consume what they
/// read, so a truncated or trailing-garbage payload is detectable by
/// the caller (`in.empty()` at the end). Every decoder returns false on
/// truncation or malformed input instead of reading out of bounds.

inline void PutVarint(std::string& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

inline bool GetVarint(std::string_view& in, uint64_t& v) {
  v = 0;
  for (size_t i = 0; i < in.size() && i < 10; ++i) {
    uint64_t byte = static_cast<unsigned char>(in[i]);
    // Byte 10 holds bits 63..69; anything above bit 63 is an overlong
    // or overflowing encoding — corrupt, not just unusual.
    if (i == 9 && (byte & 0x7E) != 0) return false;
    v |= (byte & 0x7F) << (7 * i);
    if ((byte & 0x80) == 0) {
      in.remove_prefix(i + 1);
      return true;
    }
  }
  return false;  // ran out of input mid-varint (or >10 continuation bytes)
}

/// Zigzag mapping so small-magnitude signed values stay short.
inline void PutZigzag(std::string& out, int64_t v) {
  PutVarint(out, (static_cast<uint64_t>(v) << 1) ^
                     static_cast<uint64_t>(v >> 63));
}

inline bool GetZigzag(std::string_view& in, int64_t& v) {
  uint64_t u;
  if (!GetVarint(in, u)) return false;
  v = static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
  return true;
}

inline void PutLenPrefixed(std::string& out, std::string_view s) {
  PutVarint(out, s.size());
  out.append(s.data(), s.size());
}

/// `max_len` guards a corrupt length prefix from turning into a
/// multi-gigabyte allocation, mirroring serde::GetString.
inline bool GetLenPrefixed(std::string_view& in, std::string_view& s,
                           uint64_t max_len = 1ULL << 30) {
  uint64_t len;
  if (!GetVarint(in, len) || len > max_len || len > in.size()) return false;
  s = in.substr(0, static_cast<size_t>(len));
  in.remove_prefix(static_cast<size_t>(len));
  return true;
}

/// Gap-encodes a sorted, duplicate-free u64 sequence: count, first
/// value, then successive deltas. Random 64-bit hashes gain ~log2(n)
/// bits per element; dense id sets collapse to a byte per element.
inline void PutDeltaSorted(std::string& out, const std::vector<uint64_t>& sorted) {
  PutVarint(out, sorted.size());
  uint64_t prev = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    PutVarint(out, i == 0 ? sorted[0] : sorted[i] - prev);
    prev = sorted[i];
  }
}

/// Rejects non-monotone streams (a corrupt delta that wraps) as well as
/// truncation; `max_count` bounds the up-front reserve.
inline bool GetDeltaSorted(std::string_view& in, std::vector<uint64_t>& out,
                           uint64_t max_count = 1ULL << 30) {
  uint64_t count;
  // Each element costs at least one byte, so a count beyond the bytes
  // remaining is corrupt — and rejecting it here keeps the reserve()
  // below proportional to the actual input.
  if (!GetVarint(in, count) || count > max_count || count > in.size()) {
    return false;
  }
  out.clear();
  out.reserve(static_cast<size_t>(count));
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta;
    if (!GetVarint(in, delta)) return false;
    uint64_t value = i == 0 ? delta : prev + delta;
    if (i != 0 && (delta == 0 || value < prev)) return false;
    out.push_back(value);
    prev = value;
  }
  return true;
}

}  // namespace sparqlog::util::vbyte

#endif  // SPARQLOG_UTIL_VBYTE_H_
