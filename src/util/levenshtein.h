#ifndef SPARQLOG_UTIL_LEVENSHTEIN_H_
#define SPARQLOG_UTIL_LEVENSHTEIN_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/budget.h"

namespace sparqlog::util {

/// Reusable scratch space for the allocation-free distance variants.
/// A default-constructed scratch works for any input; the vectors grow
/// on first use and are reused (never shrunk) afterwards, so a caller
/// that keeps one scratch per thread pays zero allocations on the hot
/// path after warmup.
struct LevenshteinScratch {
  /// Banded-DP rows (BoundedLevenshtein).
  std::vector<size_t> row, next;
  /// Blocked Myers state: per-byte pattern bitmasks (256 x words) and
  /// the vertical positive/negative delta words.
  std::vector<uint64_t> peq;
  std::vector<uint64_t> vp, vn;
};

/// Classic Levenshtein edit distance, O(|a|*|b|) time, O(min) space.
/// Kept as the plain DP reference implementation; the bit-parallel
/// variants below are property-tested against it.
size_t Levenshtein(std::string_view a, std::string_view b);

/// Myers (1999) bit-parallel Levenshtein distance: exact, O(ceil(m/64)*n)
/// where m is the shorter length. For m <= 64 the whole DP lives in two
/// machine words and never touches the heap; longer patterns use the
/// block-based formulation with `scratch`-backed state.
size_t MyersLevenshtein(std::string_view a, std::string_view b,
                        LevenshteinScratch& scratch);

/// Convenience overload that owns its scratch (allocates only when the
/// shorter input exceeds 64 bytes).
size_t MyersLevenshtein(std::string_view a, std::string_view b);

/// Banded Levenshtein with early exit.
///
/// Returns the edit distance if it is <= `max_dist`, otherwise returns
/// `max_dist + 1`. Runs in O(max(|a|,|b|) * max_dist) time, which is what
/// makes streak detection over large logs feasible (Section 8 of the
/// paper calls the naive approach "extremely resource-consuming").
size_t BoundedLevenshtein(std::string_view a, std::string_view b,
                          size_t max_dist);

/// Allocation-free banded variant: identical results, caller-provided
/// scratch rows instead of per-call heap allocation.
size_t BoundedLevenshtein(std::string_view a, std::string_view b,
                          size_t max_dist, LevenshteinScratch& scratch);

/// Bit-parallel bounded distance: same contract as BoundedLevenshtein
/// (exact distance if <= `max_dist`, else `max_dist + 1`) computed with
/// the Myers recurrence plus a per-column lower-bound cutoff — the
/// running score minus the columns still to process can only shrink by
/// one per column, so once it exceeds `max_dist` the tail is skipped.
size_t MyersBoundedLevenshtein(std::string_view a, std::string_view b,
                               size_t max_dist, LevenshteinScratch& scratch);

/// Budgeted variant: charges `budget` one step per 64-row block column
/// (so total charge is ceil(m/64) * n for inputs that run to the end).
/// On exhaustion the DP stops and `max_dist + 1` is returned; the caller
/// distinguishes "too far" from "abandoned" via `budget->exhausted()`.
/// The step count depends only on the two strings and `max_dist`, so
/// the abandon decision is deterministic per pair.
size_t MyersBoundedLevenshtein(std::string_view a, std::string_view b,
                               size_t max_dist, LevenshteinScratch& scratch,
                               StepBudget* budget);

/// Normalized similarity test used by the paper's streak analysis:
/// true iff Levenshtein(a, b) / max(|a|, |b|) <= `threshold`
/// (the paper uses threshold = 0.25).
bool SimilarByLevenshtein(std::string_view a, std::string_view b,
                          double threshold);

/// Hot-path overload: same predicate, scratch-backed bit-parallel DP.
bool SimilarByLevenshtein(std::string_view a, std::string_view b,
                          double threshold, LevenshteinScratch& scratch);

}  // namespace sparqlog::util

#endif  // SPARQLOG_UTIL_LEVENSHTEIN_H_
