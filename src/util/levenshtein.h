#ifndef SPARQLOG_UTIL_LEVENSHTEIN_H_
#define SPARQLOG_UTIL_LEVENSHTEIN_H_

#include <cstddef>
#include <string_view>

namespace sparqlog::util {

/// Classic Levenshtein edit distance, O(|a|*|b|) time, O(min) space.
size_t Levenshtein(std::string_view a, std::string_view b);

/// Banded Levenshtein with early exit.
///
/// Returns the edit distance if it is <= `max_dist`, otherwise returns
/// `max_dist + 1`. Runs in O(max(|a|,|b|) * max_dist) time, which is what
/// makes streak detection over large logs feasible (Section 8 of the
/// paper calls the naive approach "extremely resource-consuming").
size_t BoundedLevenshtein(std::string_view a, std::string_view b,
                          size_t max_dist);

/// Normalized similarity test used by the paper's streak analysis:
/// true iff Levenshtein(a, b) / max(|a|, |b|) <= `threshold`
/// (the paper uses threshold = 0.25).
bool SimilarByLevenshtein(std::string_view a, std::string_view b,
                          double threshold);

}  // namespace sparqlog::util

#endif  // SPARQLOG_UTIL_LEVENSHTEIN_H_
