#ifndef SPARQLOG_UTIL_RESULT_H_
#define SPARQLOG_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace sparqlog::util {

/// A value-or-error sum type (Arrow's `Result<T>` idiom).
///
/// A `Result<T>` is either OK and holds a `T`, or holds a non-OK `Status`.
/// Accessing the value of a failed result is a programming error (asserts
/// in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (OK result).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from a non-OK status.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK Result must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when the result is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sparqlog::util

#endif  // SPARQLOG_UTIL_RESULT_H_
