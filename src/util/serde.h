#ifndef SPARQLOG_UTIL_SERDE_H_
#define SPARQLOG_UTIL_SERDE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>

namespace sparqlog::util::serde {

/// Fixed-width little-endian primitives for the run-journal state blobs
/// (pipeline/journal.h). The encoding is deliberately dumb: u64 words
/// and length-prefixed byte strings, written in a fixed field order by
/// each component's SaveState. Byte order is pinned so a journal written
/// on one machine loads on another.

inline void PutU64(std::ostream& out, uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  out.write(bytes, sizeof(bytes));
}

inline bool GetU64(std::istream& in, uint64_t& v) {
  char bytes[8];
  if (!in.read(bytes, sizeof(bytes))) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(bytes[i]))
         << (8 * i);
  }
  return true;
}

inline void PutI64(std::ostream& out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

inline bool GetI64(std::istream& in, int64_t& v) {
  uint64_t u;
  if (!GetU64(in, u)) return false;
  v = static_cast<int64_t>(u);
  return true;
}

inline void PutString(std::ostream& out, std::string_view s) {
  PutU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/// Reads a length-prefixed string; `max_len` guards against loading a
/// corrupt/truncated journal as a multi-gigabyte allocation.
inline bool GetString(std::istream& in, std::string& s,
                      uint64_t max_len = 1ULL << 30) {
  uint64_t len;
  if (!GetU64(in, len) || len > max_len) return false;
  s.resize(static_cast<size_t>(len));
  return len == 0 ||
         static_cast<bool>(in.read(s.data(), static_cast<std::streamsize>(len)));
}

/// Buffer-based twins of the iostream primitives, for code that builds
/// a blob in memory before checksumming it (util/snapshot_io.h uses
/// these for the fixed-width header and manifest words). Same wire
/// format: little-endian u64, so a value written by either overload
/// reads back through either.

inline void PutU64(std::string& out, uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  out.append(bytes, sizeof(bytes));
}

inline bool GetU64(std::string_view& in, uint64_t& v) {
  if (in.size() < 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(in[i])) << (8 * i);
  }
  in.remove_prefix(8);
  return true;
}

}  // namespace sparqlog::util::serde

#endif  // SPARQLOG_UTIL_SERDE_H_
