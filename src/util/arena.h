#ifndef SPARQLOG_UTIL_ARENA_H_
#define SPARQLOG_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <string_view>
#include <vector>

#include "util/fnv.h"

namespace sparqlog::util {

/// Epoch-reset bump allocator behind the std::pmr interface.
///
/// One `ArenaResource` owns all AST node storage for one `ParseLogLine`
/// call (or one pipeline chunk): every allocation is a pointer bump into
/// a chunk, deallocation is a no-op, and `Reset()` rewinds to the start
/// of the first chunk while keeping every chunk's capacity — so a warm
/// arena parses an entire log without touching the heap. This is the
/// PR 5 interning/scratch pattern (`TermInterner::Clear()`'s O(1)
/// epoch bump) applied to the parser core.
///
/// Lifetime contract: anything allocated from the arena (pmr strings and
/// vectors inside `sparql::Query` nodes) dies at `Reset()` — callers
/// must finish with an arena-built AST before resetting the scratch
/// that owns it. Copying such an AST (plain copy construction) detaches
/// it: pmr copy construction always lands on the default resource, so
/// copies are independent heap objects with no arena tie.
class ArenaResource final : public std::pmr::memory_resource {
 public:
  explicit ArenaResource(size_t first_chunk_bytes = 4096)
      : first_chunk_bytes_(first_chunk_bytes < 64 ? 64 : first_chunk_bytes) {}

  ArenaResource(const ArenaResource&) = delete;
  ArenaResource& operator=(const ArenaResource&) = delete;

  /// Rewinds the bump cursor to the first chunk. Keeps all chunk
  /// capacity (the steady state allocates nothing) and bumps the epoch
  /// so debugging/telemetry can tell generations apart. Everything ever
  /// allocated from this arena is invalid after this call.
  void Reset() {
    chunk_ = 0;
    offset_ = 0;
    used_ = 0;
    ++epoch_;
  }

  /// Generation counter: incremented by every Reset().
  uint64_t epoch() const { return epoch_; }

  /// Bytes handed out since the last Reset (including alignment pad).
  size_t used_bytes() const { return used_; }

  /// Total capacity across all chunks (survives Reset).
  size_t capacity_bytes() const {
    size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 protected:
  void* do_allocate(size_t bytes, size_t alignment) override {
    // Chunk bases are new[]-aligned (max_align_t); rounding the bump
    // offset to `alignment` keeps every returned pointer aligned.
    while (chunk_ < chunks_.size()) {
      Chunk& c = chunks_[chunk_];
      size_t aligned = AlignUp(offset_, alignment);
      if (aligned + bytes <= c.size) {
        offset_ = aligned + bytes;
        used_ += bytes;
        return c.data.get() + aligned;
      }
      ++chunk_;
      offset_ = 0;
    }
    // Grow: double the last chunk, floor at first_chunk_bytes_, and
    // always large enough for an oversized single allocation.
    size_t grow = chunks_.empty() ? first_chunk_bytes_
                                  : chunks_.back().size * 2;
    if (grow < bytes + alignment) grow = bytes + alignment;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(grow), grow});
    chunk_ = chunks_.size() - 1;
    size_t aligned = AlignUp(0, alignment);
    offset_ = aligned + bytes;
    used_ += bytes;
    return chunks_.back().data.get() + aligned;
  }

  void do_deallocate(void*, size_t, size_t) override {
    // Bump allocator: individual frees are no-ops; Reset() reclaims all.
  }

  bool do_is_equal(const std::pmr::memory_resource& o) const noexcept override {
    return this == &o;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
  };

  static size_t AlignUp(size_t n, size_t alignment) {
    return (n + alignment - 1) & ~(alignment - 1);
  }

  size_t first_chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t chunk_ = 0;   ///< index of the chunk the cursor is in
  size_t offset_ = 0;  ///< bump offset within that chunk
  size_t used_ = 0;
  uint64_t epoch_ = 0;
};

/// Epoch-cleared string-to-string cache backed by its own arena: the
/// per-worker pool the parser uses to memoize prefixed-name expansions
/// ("dbo:Foo" -> "http://dbpedia.org/ontology/Foo") across log lines.
///
/// Open-addressing slots carry an epoch tag, so `Clear()` is O(1): it
/// bumps the epoch and rewinds the backing arena; stale slots are
/// lazily invalidated on probe (the PR 5 `TermInterner` idiom). The
/// cache flushes itself when the backing storage crosses `max_bytes`,
/// which bounds memory on adversarial corpora while keeping the common
/// repetitive-log case warm.
///
/// Returned views point into interner-owned storage and stay valid
/// until the next Clear() (explicit or capacity-triggered) — callers
/// must copy what they keep, which the arena-backed AST does anyway.
class StringInterner {
 public:
  explicit StringInterner(size_t max_bytes = size_t{1} << 20)
      : max_bytes_(max_bytes), arena_(4096) {}

  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  /// Looks up `key`; returns nullptr on miss. The pointed-at view is
  /// valid until the next Insert (which may flush) or Clear.
  const std::string_view* Find(std::string_view key) const {
    if (slots_.empty()) return nullptr;
    size_t mask = slots_.size() - 1;
    uint64_t h = Fnv1aHash(key);
    for (size_t i = h & mask;; i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (s.epoch != epoch_ || s.empty()) return nullptr;
      if (s.hash == h && s.key == key) return &s.value;
    }
  }

  /// Inserts (or overwrites) `key -> value`, copying both into interner
  /// storage. Triggers a full flush first if the storage budget is
  /// exhausted.
  void Insert(std::string_view key, std::string_view value) {
    if (arena_.used_bytes() + key.size() + value.size() > max_bytes_) Clear();
    if (slots_.empty()) Rehash(64);
    if ((live_ + 1) * 10 > slots_.size() * 7) Rehash(slots_.size() * 2);
    size_t mask = slots_.size() - 1;
    uint64_t h = Fnv1aHash(key);
    for (size_t i = h & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.epoch != epoch_ || s.empty()) {
        s.hash = h;
        s.epoch = epoch_;
        s.key = Copy(key);
        s.value = Copy(value);
        ++live_;
        return;
      }
      if (s.hash == h && s.key == key) return;  // first insertion wins
    }
  }

  /// O(1) epoch-bump invalidation of every entry; keeps table and
  /// storage capacity.
  void Clear() {
    ++epoch_;
    live_ = 0;
    arena_.Reset();
  }

  size_t size() const { return live_; }
  uint64_t epoch() const { return epoch_; }

 private:
  struct Slot {
    uint64_t hash = 0;
    uint64_t epoch = ~uint64_t{0};
    std::string_view key;
    std::string_view value;
    bool empty() const { return key.data() == nullptr; }
  };

  std::string_view Copy(std::string_view s) {
    if (s.empty()) return std::string_view("", 0);
    char* p = static_cast<char*>(arena_.allocate(s.size(), 1));
    std::char_traits<char>::copy(p, s.data(), s.size());
    return std::string_view(p, s.size());
  }

  void Rehash(size_t new_size) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_size, Slot{});
    size_t mask = new_size - 1;
    for (const Slot& s : old) {
      if (s.epoch != epoch_ || s.empty()) continue;
      for (size_t i = s.hash & mask;; i = (i + 1) & mask) {
        Slot& d = slots_[i];
        if (d.epoch != epoch_ || d.empty()) {
          d = s;
          d.epoch = epoch_;
          break;
        }
      }
    }
  }

  size_t max_bytes_;
  ArenaResource arena_;
  std::vector<Slot> slots_;
  size_t live_ = 0;
  uint64_t epoch_ = 0;
};

}  // namespace sparqlog::util

#endif  // SPARQLOG_UTIL_ARENA_H_
