#ifndef SPARQLOG_UTIL_ASCII_H_
#define SPARQLOG_UTIL_ASCII_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace sparqlog::util {

/// Static ASCII character classes, replacing the locale-dependent
/// `std::isspace`/`std::isalnum`/... calls on the ingest hot path.
/// The table pins C-locale ASCII semantics no matter what locale the
/// host process runs under, costs one L1-resident load per query
/// (`__ctype_b_loc()` behind `std::isalpha` is a TLS lookup per call),
/// and doubles as the ground truth the SIMD scan kernels
/// (util/simd_scan.h) are differentially tested against.
///
/// The grammar-specific classes mirror the lexer's historical
/// predicates exactly, including their treatment of bytes >= 0x80
/// (legal in names — log queries carry raw UTF-8 — and inside IRIs).
enum AsciiClass : uint16_t {
  kAsciiSpace = 1u << 0,       ///< ' ' \t \n \v \f \r
  kAsciiDigit = 1u << 1,       ///< 0-9
  kAsciiAlpha = 1u << 2,       ///< a-z A-Z
  kAsciiXdigit = 1u << 3,      ///< 0-9 a-f A-F
  kAsciiNameStart = 1u << 4,   ///< alpha | '_' | >= 0x80
  kAsciiNameChar = 1u << 5,    ///< NameStart | digit | '-'
  kAsciiVarChar = 1u << 6,     ///< NameStart | digit ('-' ends a variable)
  kAsciiPnLocal = 1u << 7,     ///< NameChar | ':' | '.' (pname local part)
  kAsciiIriChar = 1u << 8,     ///< legal inside IRIREF (see below)
  kAsciiLangTag = 1u << 9,     ///< alnum | '-' (after '@')
  kAsciiBlankLabel = 1u << 10, ///< NameChar | '.' (blank node label body)
  kAsciiUrlEscape = 1u << 11,  ///< '%' | '+' (URL-decode stop set)
};

namespace ascii_internal {

constexpr std::array<uint16_t, 256> BuildClassTable() {
  std::array<uint16_t, 256> t{};
  for (int i = 0; i < 256; ++i) {
    const char c = static_cast<char>(i);
    uint16_t bits = 0;
    const bool digit = c >= '0' && c <= '9';
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool high = i >= 0x80;
    const bool name_start = alpha || c == '_' || high;
    const bool name_char = name_start || digit || c == '-';
    if (c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' ||
        c == '\r') {
      bits |= kAsciiSpace;
    }
    if (digit) bits |= kAsciiDigit;
    if (alpha) bits |= kAsciiAlpha;
    if (digit || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')) {
      bits |= kAsciiXdigit;
    }
    if (name_start) bits |= kAsciiNameStart;
    if (name_char) bits |= kAsciiNameChar;
    if (name_start || digit) bits |= kAsciiVarChar;
    if (name_char || c == ':' || c == '.') bits |= kAsciiPnLocal;
    // IRIREF bodies: everything except control bytes/space (<= 0x20)
    // and <>"{}|^`\ — 0x7F and bytes >= 0x80 are deliberately legal,
    // matching the lexer's historical IsIriChar.
    if (i > 0x20 && c != '<' && c != '>' && c != '"' && c != '{' &&
        c != '}' && c != '|' && c != '^' && c != '`' && c != '\\') {
      bits |= kAsciiIriChar;
    }
    if (alpha || digit || c == '-') bits |= kAsciiLangTag;
    if (name_char || c == '.') bits |= kAsciiBlankLabel;
    if (c == '%' || c == '+') bits |= kAsciiUrlEscape;
    t[static_cast<size_t>(i)] = bits;
  }
  return t;
}

inline constexpr std::array<uint16_t, 256> kClassTable = BuildClassTable();

}  // namespace ascii_internal

inline constexpr uint16_t AsciiClassOf(char c) {
  return ascii_internal::kClassTable[static_cast<unsigned char>(c)];
}

inline constexpr bool IsAsciiSpace(char c) {
  return (AsciiClassOf(c) & kAsciiSpace) != 0;
}
inline constexpr bool IsAsciiDigit(char c) {
  return (AsciiClassOf(c) & kAsciiDigit) != 0;
}
inline constexpr bool IsAsciiAlpha(char c) {
  return (AsciiClassOf(c) & kAsciiAlpha) != 0;
}
inline constexpr bool IsAsciiAlnum(char c) {
  return (AsciiClassOf(c) & (kAsciiAlpha | kAsciiDigit)) != 0;
}
inline constexpr bool IsAsciiXdigit(char c) {
  return (AsciiClassOf(c) & kAsciiXdigit) != 0;
}
inline constexpr bool IsNameStartChar(char c) {
  return (AsciiClassOf(c) & kAsciiNameStart) != 0;
}
inline constexpr bool IsNameChar(char c) {
  return (AsciiClassOf(c) & kAsciiNameChar) != 0;
}
inline constexpr bool IsIriChar(char c) {
  return (AsciiClassOf(c) & kAsciiIriChar) != 0;
}

/// First index >= pos whose class bits do not intersect `mask` (or
/// s.size()). The scalar reference the SIMD kernels must match.
inline size_t ScanClassScalar(std::string_view s, size_t pos, uint16_t mask) {
  while (pos < s.size() && (AsciiClassOf(s[pos]) & mask) != 0) ++pos;
  return pos;
}

}  // namespace sparqlog::util

#endif  // SPARQLOG_UTIL_ASCII_H_
