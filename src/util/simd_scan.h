#ifndef SPARQLOG_UTIL_SIMD_SCAN_H_
#define SPARQLOG_UTIL_SIMD_SCAN_H_

#include <cstddef>
#include <string_view>

#include "util/ascii.h"

/// Vectorized byte-run scanning for the ingest front end.
///
/// Every primitive answers "where does this run end?" (first index >=
/// pos outside the class) or "where is the next stop byte?" (first
/// index >= pos inside the stop set), returning s.size() when the scan
/// exhausts the input. Each exists in two always-compiled variants:
///
///   * Scalar*: the portable reference — table lookups over
///     util/ascii.h plus a SWAR (8-bytes-per-word) stop-byte search.
///   * Simd*: SSE2, 16 bytes per step (arithmetic range/equality
///     classification, no lookup needed). On targets without SSE2 the
///     Simd symbols are compiled as aliases of the scalar ones.
///
/// The unprefixed names are what the lexer/decoder call; they resolve
/// at compile time to Simd* unless SPARQLOG_NO_SIMD is defined (the
/// scalar-identical fallback build, exercised by its own CI leg). Both
/// variants stay linked into every build so the fuzz driver's
/// vector-vs-scalar differential phase (testing/invariants) can pin
/// them bit-identical on every input it generates.

#if !defined(SPARQLOG_NO_SIMD) && (defined(__SSE2__) || \
    (defined(_M_X64) && !defined(_M_ARM64EC)))
#define SPARQLOG_SIMD_SSE2 1
#else
#define SPARQLOG_SIMD_SSE2 0
#endif

namespace sparqlog::util::scan {

// --- Scalar reference variants (always the source of truth) -------------
size_t ScalarNameRun(std::string_view s, size_t pos);
size_t ScalarVarRun(std::string_view s, size_t pos);
size_t ScalarPnLocalRun(std::string_view s, size_t pos);
size_t ScalarBlankLabelRun(std::string_view s, size_t pos);
size_t ScalarLangTagRun(std::string_view s, size_t pos);
size_t ScalarWhitespaceRun(std::string_view s, size_t pos);
size_t ScalarIriRun(std::string_view s, size_t pos);
size_t ScalarDigitRun(std::string_view s, size_t pos);
/// First index of `quote`, '\\', or — unless `long_quote` — '\n'.
size_t ScalarFindStringStop(std::string_view s, size_t pos, char quote,
                            bool long_quote);
/// First index of '%' or '+' (the URL-decode escape set).
size_t ScalarFindEscape(std::string_view s, size_t pos);

// --- SIMD variants (SSE2; alias the scalar ones without it) -------------
size_t SimdNameRun(std::string_view s, size_t pos);
size_t SimdVarRun(std::string_view s, size_t pos);
size_t SimdPnLocalRun(std::string_view s, size_t pos);
size_t SimdBlankLabelRun(std::string_view s, size_t pos);
size_t SimdLangTagRun(std::string_view s, size_t pos);
size_t SimdWhitespaceRun(std::string_view s, size_t pos);
size_t SimdIriRun(std::string_view s, size_t pos);
size_t SimdDigitRun(std::string_view s, size_t pos);
size_t SimdFindStringStop(std::string_view s, size_t pos, char quote,
                          bool long_quote);
size_t SimdFindEscape(std::string_view s, size_t pos);

// --- Default dispatch: what the hot paths call --------------------------
#if SPARQLOG_SIMD_SSE2
inline size_t NameRun(std::string_view s, size_t pos) {
  return SimdNameRun(s, pos);
}
inline size_t VarRun(std::string_view s, size_t pos) {
  return SimdVarRun(s, pos);
}
inline size_t PnLocalRun(std::string_view s, size_t pos) {
  return SimdPnLocalRun(s, pos);
}
inline size_t BlankLabelRun(std::string_view s, size_t pos) {
  return SimdBlankLabelRun(s, pos);
}
inline size_t LangTagRun(std::string_view s, size_t pos) {
  return SimdLangTagRun(s, pos);
}
inline size_t WhitespaceRun(std::string_view s, size_t pos) {
  return SimdWhitespaceRun(s, pos);
}
inline size_t IriRun(std::string_view s, size_t pos) {
  return SimdIriRun(s, pos);
}
inline size_t DigitRun(std::string_view s, size_t pos) {
  return SimdDigitRun(s, pos);
}
inline size_t FindStringStop(std::string_view s, size_t pos, char quote,
                             bool long_quote) {
  return SimdFindStringStop(s, pos, quote, long_quote);
}
inline size_t FindEscape(std::string_view s, size_t pos) {
  return SimdFindEscape(s, pos);
}
#else
inline size_t NameRun(std::string_view s, size_t pos) {
  return ScalarNameRun(s, pos);
}
inline size_t VarRun(std::string_view s, size_t pos) {
  return ScalarVarRun(s, pos);
}
inline size_t PnLocalRun(std::string_view s, size_t pos) {
  return ScalarPnLocalRun(s, pos);
}
inline size_t BlankLabelRun(std::string_view s, size_t pos) {
  return ScalarBlankLabelRun(s, pos);
}
inline size_t LangTagRun(std::string_view s, size_t pos) {
  return ScalarLangTagRun(s, pos);
}
inline size_t WhitespaceRun(std::string_view s, size_t pos) {
  return ScalarWhitespaceRun(s, pos);
}
inline size_t IriRun(std::string_view s, size_t pos) {
  return ScalarIriRun(s, pos);
}
inline size_t DigitRun(std::string_view s, size_t pos) {
  return ScalarDigitRun(s, pos);
}
inline size_t FindStringStop(std::string_view s, size_t pos, char quote,
                             bool long_quote) {
  return ScalarFindStringStop(s, pos, quote, long_quote);
}
inline size_t FindEscape(std::string_view s, size_t pos) {
  return ScalarFindEscape(s, pos);
}
#endif

}  // namespace sparqlog::util::scan

#endif  // SPARQLOG_UTIL_SIMD_SCAN_H_
