#ifndef SPARQLOG_UTIL_FNV_H_
#define SPARQLOG_UTIL_FNV_H_

#include <cstdint>
#include <string_view>

namespace sparqlog::util {

/// FNV-1a constants (64-bit). One definition shared by the one-shot
/// hash (`corpus::HashBytes`) and the incremental hasher below so that
/// streaming a serialization through `Fnv1a` is bit-identical to
/// hashing the materialized string.
inline constexpr uint64_t kFnv1aOffsetBasis = 1469598103934665603ULL;
inline constexpr uint64_t kFnv1aPrime = 1099511628211ULL;

/// Incremental FNV-1a. Feeding chunks in any split produces the same
/// digest as hashing their concatenation; this is what lets the
/// canonical-hash sink replace "serialize, then hash the string" on the
/// ingest hot path without changing a single hash value.
class Fnv1a {
 public:
  void Update(std::string_view chunk) {
    uint64_t h = h_;
    for (unsigned char c : chunk) {
      h ^= c;
      h *= kFnv1aPrime;
    }
    h_ = h;
  }

  uint64_t digest() const { return h_; }

 private:
  uint64_t h_ = kFnv1aOffsetBasis;
};

/// One-shot FNV-1a of a byte string.
inline uint64_t Fnv1aHash(std::string_view s) {
  Fnv1a h;
  h.Update(s);
  return h.digest();
}

}  // namespace sparqlog::util

#endif  // SPARQLOG_UTIL_FNV_H_
