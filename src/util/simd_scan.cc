#include "util/simd_scan.h"

#include <bit>
#include <cstdint>
#include <cstring>

#if SPARQLOG_SIMD_SSE2
#include <emmintrin.h>
#endif

namespace sparqlog::util::scan {

// ---------------------------------------------------------------------------
// Scalar reference variants: table scans plus a SWAR stop-byte search.
// ---------------------------------------------------------------------------

size_t ScalarNameRun(std::string_view s, size_t pos) {
  return ScanClassScalar(s, pos, kAsciiNameChar);
}
size_t ScalarVarRun(std::string_view s, size_t pos) {
  return ScanClassScalar(s, pos, kAsciiVarChar);
}
size_t ScalarPnLocalRun(std::string_view s, size_t pos) {
  return ScanClassScalar(s, pos, kAsciiPnLocal);
}
size_t ScalarBlankLabelRun(std::string_view s, size_t pos) {
  return ScanClassScalar(s, pos, kAsciiBlankLabel);
}
size_t ScalarLangTagRun(std::string_view s, size_t pos) {
  return ScanClassScalar(s, pos, kAsciiLangTag);
}
size_t ScalarWhitespaceRun(std::string_view s, size_t pos) {
  return ScanClassScalar(s, pos, kAsciiSpace);
}
size_t ScalarIriRun(std::string_view s, size_t pos) {
  return ScanClassScalar(s, pos, kAsciiIriChar);
}
size_t ScalarDigitRun(std::string_view s, size_t pos) {
  return ScanClassScalar(s, pos, kAsciiDigit);
}

namespace {

constexpr uint64_t kSwarOnes = 0x0101010101010101ULL;
constexpr uint64_t kSwarHighs = 0x8080808080808080ULL;

/// High bit of byte i set iff byte i of `word` equals the byte
/// replicated through `pattern`. False positives can only appear at
/// positions above a true match (borrow propagation), so the *lowest*
/// set bit is always a true match on little-endian loads.
inline uint64_t SwarMatch(uint64_t word, uint64_t pattern) {
  uint64_t x = word ^ pattern;
  return (x - kSwarOnes) & ~x & kSwarHighs;
}

inline uint64_t Broadcast(char c) {
  return kSwarOnes * static_cast<uint8_t>(c);
}

constexpr bool kLittleEndian = std::endian::native == std::endian::little;

}  // namespace

size_t ScalarFindStringStop(std::string_view s, size_t pos, char quote,
                            bool long_quote) {
  const size_t n = s.size();
  if constexpr (kLittleEndian) {
    const uint64_t q = Broadcast(quote);
    const uint64_t bs = Broadcast('\\');
    const uint64_t nl = Broadcast('\n');
    while (pos + 8 <= n) {
      uint64_t w;
      std::memcpy(&w, s.data() + pos, 8);
      uint64_t m = SwarMatch(w, q) | SwarMatch(w, bs);
      if (!long_quote) m |= SwarMatch(w, nl);
      if (m != 0) return pos + static_cast<size_t>(std::countr_zero(m)) / 8;
      pos += 8;
    }
  }
  while (pos < n) {
    const char c = s[pos];
    if (c == quote || c == '\\' || (!long_quote && c == '\n')) return pos;
    ++pos;
  }
  return n;
}

size_t ScalarFindEscape(std::string_view s, size_t pos) {
  const size_t n = s.size();
  if constexpr (kLittleEndian) {
    const uint64_t pct = Broadcast('%');
    const uint64_t plus = Broadcast('+');
    while (pos + 8 <= n) {
      uint64_t w;
      std::memcpy(&w, s.data() + pos, 8);
      const uint64_t m = SwarMatch(w, pct) | SwarMatch(w, plus);
      if (m != 0) return pos + static_cast<size_t>(std::countr_zero(m)) / 8;
      pos += 8;
    }
  }
  while (pos < n && s[pos] != '%' && s[pos] != '+') ++pos;
  return pos;
}

// ---------------------------------------------------------------------------
// SSE2 variants: 16 bytes per step, classified with arithmetic range
// and equality checks (no in-register table needed). Every kernel
// finishes its sub-16-byte tail through the scalar reference, so the
// two variants agree byte for byte by construction everywhere but the
// vector body — which the differential fuzz phase pins.
// ---------------------------------------------------------------------------

#if SPARQLOG_SIMD_SSE2

namespace {

inline __m128i Load16(std::string_view s, size_t pos) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(s.data() + pos));
}

inline __m128i Eq(__m128i v, char c) {
  return _mm_cmpeq_epi8(v, _mm_set1_epi8(c));
}

/// Bytes of `x` (as unsigned) <= k. `x` may come from a wrapping sub.
inline __m128i LeU8(__m128i x, char k) {
  return _mm_cmpeq_epi8(_mm_subs_epu8(x, _mm_set1_epi8(k)),
                        _mm_setzero_si128());
}

inline __m128i AlphaMask(__m128i v) {
  const __m128i lower = _mm_or_si128(v, _mm_set1_epi8(0x20));
  return LeU8(_mm_sub_epi8(lower, _mm_set1_epi8('a')), 25);
}

inline __m128i DigitMask(__m128i v) {
  return LeU8(_mm_sub_epi8(v, _mm_set1_epi8('0')), 9);
}

/// Bytes >= 0x80 (sign bit set).
inline __m128i HighMask(__m128i v) {
  return _mm_cmplt_epi8(v, _mm_setzero_si128());
}

inline __m128i VarCharMask(__m128i v) {
  return _mm_or_si128(
      _mm_or_si128(AlphaMask(v), DigitMask(v)),
      _mm_or_si128(Eq(v, '_'), HighMask(v)));
}

inline __m128i NameCharMask(__m128i v) {
  return _mm_or_si128(VarCharMask(v), Eq(v, '-'));
}

inline __m128i WhitespaceMask(__m128i v) {
  return _mm_or_si128(Eq(v, ' '),
                      LeU8(_mm_sub_epi8(v, _mm_set1_epi8(0x09)), 4));
}

/// Bytes NOT legal inside an IRIREF: <= 0x20 or one of <>"{}|^`\ .
inline __m128i IriStopMask(__m128i v) {
  __m128i stop = LeU8(v, 0x20);
  stop = _mm_or_si128(stop, Eq(v, '<'));
  stop = _mm_or_si128(stop, Eq(v, '>'));
  stop = _mm_or_si128(stop, Eq(v, '"'));
  stop = _mm_or_si128(stop, Eq(v, '{'));
  stop = _mm_or_si128(stop, Eq(v, '}'));
  stop = _mm_or_si128(stop, Eq(v, '|'));
  stop = _mm_or_si128(stop, Eq(v, '^'));
  stop = _mm_or_si128(stop, Eq(v, '`'));
  stop = _mm_or_si128(stop, Eq(v, '\\'));
  return stop;
}

/// First index past the run of bytes matching `mask_fn`, tail via the
/// scalar reference.
template <typename MaskFn, typename Tail>
inline size_t RunScan(std::string_view s, size_t pos, MaskFn mask_fn,
                      Tail tail) {
  const size_t n = s.size();
  while (pos + 16 <= n) {
    const int m = _mm_movemask_epi8(mask_fn(Load16(s, pos)));
    if (m != 0xFFFF) {
      return pos + static_cast<size_t>(
                       std::countr_one(static_cast<uint32_t>(m)));
    }
    pos += 16;
  }
  return tail(s, pos);
}

/// First index of a byte matching `stop_fn`, tail via the scalar
/// reference.
template <typename StopFn, typename Tail>
inline size_t StopScan(std::string_view s, size_t pos, StopFn stop_fn,
                       Tail tail) {
  const size_t n = s.size();
  while (pos + 16 <= n) {
    const int m = _mm_movemask_epi8(stop_fn(Load16(s, pos)));
    if (m != 0) {
      return pos + static_cast<size_t>(
                       std::countr_zero(static_cast<uint32_t>(m)));
    }
    pos += 16;
  }
  return tail(s, pos);
}

}  // namespace

size_t SimdNameRun(std::string_view s, size_t pos) {
  return RunScan(s, pos, NameCharMask, ScalarNameRun);
}

size_t SimdVarRun(std::string_view s, size_t pos) {
  return RunScan(s, pos, VarCharMask, ScalarVarRun);
}

size_t SimdPnLocalRun(std::string_view s, size_t pos) {
  return RunScan(
      s, pos,
      [](__m128i v) {
        return _mm_or_si128(NameCharMask(v),
                            _mm_or_si128(Eq(v, ':'), Eq(v, '.')));
      },
      ScalarPnLocalRun);
}

size_t SimdBlankLabelRun(std::string_view s, size_t pos) {
  return RunScan(
      s, pos,
      [](__m128i v) { return _mm_or_si128(NameCharMask(v), Eq(v, '.')); },
      ScalarBlankLabelRun);
}

size_t SimdLangTagRun(std::string_view s, size_t pos) {
  return RunScan(
      s, pos,
      [](__m128i v) {
        return _mm_or_si128(_mm_or_si128(AlphaMask(v), DigitMask(v)),
                            Eq(v, '-'));
      },
      ScalarLangTagRun);
}

size_t SimdWhitespaceRun(std::string_view s, size_t pos) {
  return RunScan(s, pos, WhitespaceMask, ScalarWhitespaceRun);
}

size_t SimdIriRun(std::string_view s, size_t pos) {
  return StopScan(s, pos, IriStopMask, ScalarIriRun);
}

size_t SimdDigitRun(std::string_view s, size_t pos) {
  return RunScan(s, pos, DigitMask, ScalarDigitRun);
}

size_t SimdFindStringStop(std::string_view s, size_t pos, char quote,
                          bool long_quote) {
  return StopScan(
      s, pos,
      [quote, long_quote](__m128i v) {
        __m128i stop = _mm_or_si128(Eq(v, quote), Eq(v, '\\'));
        if (!long_quote) stop = _mm_or_si128(stop, Eq(v, '\n'));
        return stop;
      },
      [quote, long_quote](std::string_view str, size_t p) {
        return ScalarFindStringStop(str, p, quote, long_quote);
      });
}

size_t SimdFindEscape(std::string_view s, size_t pos) {
  return StopScan(
      s, pos,
      [](__m128i v) { return _mm_or_si128(Eq(v, '%'), Eq(v, '+')); },
      ScalarFindEscape);
}

#else  // !SPARQLOG_SIMD_SSE2: the vector entry points are the scalars.

size_t SimdNameRun(std::string_view s, size_t pos) {
  return ScalarNameRun(s, pos);
}
size_t SimdVarRun(std::string_view s, size_t pos) {
  return ScalarVarRun(s, pos);
}
size_t SimdPnLocalRun(std::string_view s, size_t pos) {
  return ScalarPnLocalRun(s, pos);
}
size_t SimdBlankLabelRun(std::string_view s, size_t pos) {
  return ScalarBlankLabelRun(s, pos);
}
size_t SimdLangTagRun(std::string_view s, size_t pos) {
  return ScalarLangTagRun(s, pos);
}
size_t SimdWhitespaceRun(std::string_view s, size_t pos) {
  return ScalarWhitespaceRun(s, pos);
}
size_t SimdIriRun(std::string_view s, size_t pos) {
  return ScalarIriRun(s, pos);
}
size_t SimdDigitRun(std::string_view s, size_t pos) {
  return ScalarDigitRun(s, pos);
}
size_t SimdFindStringStop(std::string_view s, size_t pos, char quote,
                          bool long_quote) {
  return ScalarFindStringStop(s, pos, quote, long_quote);
}
size_t SimdFindEscape(std::string_view s, size_t pos) {
  return ScalarFindEscape(s, pos);
}

#endif  // SPARQLOG_SIMD_SSE2

}  // namespace sparqlog::util::scan
