#include "util/rng.h"

#include <cmath>

namespace sparqlog::util {

namespace {
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::Range(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Below(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Rng::Weighted(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    if (w > 0) total += w;
  }
  if (total <= 0) return 0;
  double pick = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0) continue;
    if (pick < weights[i]) return i;
    pick -= weights[i];
  }
  return weights.size() - 1;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  // Rejection-inversion sampling (Hörmann & Derflinger).
  if (n <= 1) return 1;
  auto h = [s](double x) {
    return s == 1.0 ? std::log(x) : std::pow(x, 1.0 - s) / (1.0 - s);
  };
  auto h_inv = [s](double x) {
    return s == 1.0 ? std::exp(x)
                    : std::pow(x * (1.0 - s), 1.0 / (1.0 - s));
  };
  double nd = static_cast<double>(n);
  double big_h = h(nd + 0.5) - h(0.5);
  for (int attempts = 0; attempts < 1000; ++attempts) {
    double u = h(0.5) + NextDouble() * big_h;
    double x = h_inv(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    double kd = static_cast<double>(k);
    if (u >= h(kd + 0.5) - std::pow(kd, -s) || attempts == 999) return k;
  }
  return 1;
}

}  // namespace sparqlog::util
