#include "util/strings.h"

#include <algorithm>
#include <cstdio>

#include "util/ascii.h"
#include "util/simd_scan.h"

namespace sparqlog::util {

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string AsciiUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char ca = a[i], cb = b[i];
    if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
    if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
    if (ca != cb) return false;
  }
  return true;
}

bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  return EqualsIgnoreCase(s.substr(0, prefix.size()), prefix);
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && IsAsciiSpace(s[b])) ++b;
  while (e > b && IsAsciiSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(std::count(s.begin(), s.end(), sep)) + 1);
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  if (!parts.empty()) {
    size_t total = sep.size() * (parts.size() - 1);
    for (const std::string& p : parts) total += p.size();
    out.reserve(total);
  }
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

namespace {
int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

void PercentDecodeTo(std::string_view s, std::string& out) {
  out.reserve(out.size() + s.size());
  size_t i = 0;
  while (i < s.size()) {
    // Bulk-copy the span up to the next '%' or '+'; only escapes drop
    // to byte-at-a-time handling.
    const size_t esc = scan::FindEscape(s, i);
    if (esc > i) out.append(s.data() + i, esc - i);
    if (esc >= s.size()) return;
    i = esc;
    if (s[i] == '%' && i + 2 < s.size()) {
      int hi = HexValue(s[i + 1]), lo = HexValue(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 3;
        continue;
      }
    }
    out.push_back(s[i] == '+' ? ' ' : s[i]);
    ++i;
  }
}

std::string PercentDecode(std::string_view s) {
  std::string out;
  PercentDecodeTo(s, out);
  return out;
}

std::string PercentEncode(std::string_view s) {
  static const char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    bool unreserved = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.' ||
                      c == '_' || c == '~';
    if (unreserved) {
      out.push_back(c);
    } else if (c == ' ') {
      out.push_back('+');
    } else {
      unsigned char u = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xF]);
    }
  }
  return out;
}

std::string WithThousands(long long n) {
  std::string digits = std::to_string(n < 0 ? -n : n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (n < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

std::string Percent(double numerator, double denominator) {
  double pct = denominator == 0.0 ? 0.0 : 100.0 * numerator / denominator;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", pct);
  return buf;
}

}  // namespace sparqlog::util
