#include "util/table.h"

#include <algorithm>
#include <cassert>

namespace sparqlog::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::AddSeparator() { rows_.emplace_back(); }

void Table::Print(std::ostream& os) const {
  std::vector<size_t> width(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  auto rule = [&] {
    for (size_t i = 0; i < width.size(); ++i) {
      os << std::string(width[i] + 2, '-');
      if (i + 1 < width.size()) os << '+';
    }
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << ' ' << row[i] << std::string(width[i] - row[i].size() + 1, ' ');
      if (i + 1 < row.size()) os << '|';
    }
    os << '\n';
  };
  print_row(header_);
  rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      rule();
    } else {
      print_row(row);
    }
  }
}

void Table::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << row[i];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) {
    if (!row.empty()) print_row(row);
  }
}

}  // namespace sparqlog::util
