#ifndef SPARQLOG_UTIL_STRINGS_H_
#define SPARQLOG_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace sparqlog::util {

/// Returns `s` with ASCII letters lowercased.
std::string AsciiLower(std::string_view s);

/// Returns `s` with ASCII letters uppercased.
std::string AsciiUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True iff `s` starts with `prefix` (case-insensitive ASCII).
bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Percent-decodes a URL-encoded string ("%20" -> ' ', '+' -> ' ').
/// Invalid escapes are passed through verbatim.
std::string PercentDecode(std::string_view s);

/// Appends the percent-decoding of `s` to `out` (no clear). Lets hot
/// loops reuse one scratch buffer instead of allocating per call.
void PercentDecodeTo(std::string_view s, std::string& out);

/// Percent-encodes a string for use as a URL query parameter value.
std::string PercentEncode(std::string_view s);

/// Formats `n` with thousands separators, e.g. 1234567 -> "1,234,567".
std::string WithThousands(long long n);

/// Formats a ratio as a percentage with two decimals, e.g. "87.97%".
std::string Percent(double numerator, double denominator);

}  // namespace sparqlog::util

#endif  // SPARQLOG_UTIL_STRINGS_H_
